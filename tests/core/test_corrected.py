"""Tests for the model-aware (corrected) nonblocking bounds."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.corrected import (
    CorrectedBound,
    destination_kill_capacity,
    is_nonblocking_corrected,
    min_middle_switches_corrected,
)
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import (
    min_middle_switches_maw_dominant,
    min_middle_switches_msw_dominant,
    valid_x_range,
)

topologies = st.tuples(st.integers(2, 10), st.integers(2, 30), st.integers(1, 6))


class TestKillCapacity:
    def test_msw_dominant_msw_model_matches_paper(self):
        assert destination_kill_capacity(
            4, 3, Construction.MSW_DOMINANT, MulticastModel.MSW
        ) == 3

    def test_msw_dominant_strong_models_k_fold(self):
        for model in (MulticastModel.MSDW, MulticastModel.MAW):
            assert destination_kill_capacity(
                4, 3, Construction.MSW_DOMINANT, model
            ) == 11  # nk - 1

    def test_maw_dominant_all_models_n_minus_1(self, model):
        assert destination_kill_capacity(
            4, 3, Construction.MAW_DOMINANT, model
        ) == 3

    def test_invalid_rejected(self, model, construction):
        with pytest.raises(ValueError):
            destination_kill_capacity(0, 1, construction, model)


class TestAgreementWithPaper:
    @given(topologies)
    def test_msw_model_equals_theorem1(self, nrk):
        """For the MSW model the corrected bound IS the paper's Theorem 1."""
        n, r, k = nrk
        for x in valid_x_range(n, r):
            assert min_middle_switches_corrected(
                n, r, k, Construction.MSW_DOMINANT, MulticastModel.MSW, x=x
            ) == min_middle_switches_msw_dominant(n, r, k, x=x)

    @given(nrk=topologies)
    def test_maw_dominant_equals_theorem2(self, nrk):
        """Theorem 2 needs no correction for any model."""
        n, r, k = nrk
        for model in MulticastModel:
            for x in valid_x_range(n, r):
                assert min_middle_switches_corrected(
                    n, r, k, Construction.MAW_DOMINANT, model, x=x
                ) == min_middle_switches_maw_dominant(n, r, k, x=x)

    @given(nrk=topologies)
    def test_k1_no_gap_anywhere(self, nrk):
        """At k=1 every model collapses to MSW and the paper is exact."""
        n, r, _ = nrk
        for model in MulticastModel:
            for construction in Construction:
                assert min_middle_switches_corrected(
                    n, r, 1, construction, model
                ) == min_middle_switches_corrected(
                    n, r, 1, construction, MulticastModel.MSW
                )


class TestTheGap:
    @given(st.tuples(st.integers(2, 8), st.integers(2, 20), st.integers(2, 5)))
    def test_strong_models_need_more_middles(self, nrk):
        """For MSDW/MAW with k>1, the corrected MSW-dominant bound is
        strictly larger than the paper's Theorem 1."""
        n, r, k = nrk
        paper = min_middle_switches_msw_dominant(n, r, k)
        for model in (MulticastModel.MSDW, MulticastModel.MAW):
            corrected = min_middle_switches_corrected(
                n, r, k, Construction.MSW_DOMINANT, model
            )
            assert corrected > paper

    def test_gap_example_numbers(self):
        """The worked example: n=2, r=3, k=2, x=1."""
        assert min_middle_switches_msw_dominant(2, 3, 2, x=1) == 5
        assert min_middle_switches_corrected(
            2, 3, 2, Construction.MSW_DOMINANT, MulticastModel.MAW, x=1
        ) == 11  # (n-1)x + (nk-1)r + 1 = 1 + 9 + 1

    @given(st.tuples(st.integers(3, 8), st.integers(4, 20), st.integers(2, 4)))
    def test_maw_dominant_now_needs_fewer_for_strong_models(self, nrk):
        """The reproduction's twist on Section 3.4: with the corrected
        bound, MAW-dominant needs no MORE middles than MSW-dominant for
        MSDW/MAW networks at the same x (and typically strictly fewer)."""
        n, r, k = nrk
        for x in valid_x_range(n, r):
            msw_dom = min_middle_switches_corrected(
                n, r, k, Construction.MSW_DOMINANT, MulticastModel.MAW, x=x
            )
            maw_dom = min_middle_switches_corrected(
                n, r, k, Construction.MAW_DOMINANT, MulticastModel.MAW, x=x
            )
            assert maw_dom <= msw_dom


class TestPredicates:
    @given(nrk=topologies)
    def test_min_m_is_minimal(self, nrk):
        n, r, k = nrk
        for model in MulticastModel:
            for construction in Construction:
                for x in valid_x_range(n, r):
                    m_min = min_middle_switches_corrected(
                        n, r, k, construction, model, x=x
                    )
                    assert is_nonblocking_corrected(
                        m_min, n, r, k, construction, model, x
                    )
                    assert not is_nonblocking_corrected(
                        m_min - 1, n, r, k, construction, model, x
                    )

    @given(nrk=topologies, m=st.integers(1, 400))
    def test_monotone_in_m(self, nrk, m):
        n, r, k = nrk
        for model in MulticastModel:
            for construction in Construction:
                if is_nonblocking_corrected(m, n, r, k, construction, model):
                    assert is_nonblocking_corrected(
                        m + 1, n, r, k, construction, model
                    )

    def test_profile_object(self, model, construction):
        bound = CorrectedBound.compute(4, 9, 2, construction, model)
        assert bound.m_min == min(m for _, m in bound.per_x)
        assert (bound.best_x, bound.m_min) in bound.per_x
        assert bound.model is model

    def test_invalid_rejected(self, model, construction):
        with pytest.raises(ValueError):
            min_middle_switches_corrected(2, 0, 1, construction, model)
        with pytest.raises(ValueError):
            is_nonblocking_corrected(5, 2, 0, 1, construction, model)
