"""Tests for the random assignment and dynamic traffic generators."""

from __future__ import annotations

import pytest

from repro.core.models import MulticastModel
from repro.switching.generators import AssignmentGenerator, dynamic_traffic
from repro.switching.requests import Endpoint, MulticastAssignment
from repro.switching.validity import is_valid_assignment, is_valid_connection


class TestAssignmentGenerator:
    def test_deterministic_given_seed(self, model):
        a = AssignmentGenerator(model, 4, 2, rng=123).random_assignment()
        b = AssignmentGenerator(model, 4, 2, rng=123).random_assignment()
        assert a == b

    def test_different_seeds_differ(self, model):
        a = AssignmentGenerator(model, 4, 2, rng=1).random_assignment(0.0)
        b = AssignmentGenerator(model, 4, 2, rng=2).random_assignment(0.0)
        assert a != b  # overwhelmingly likely; fixed seeds make it certain

    @pytest.mark.parametrize("idle", [0.0, 0.3, 0.9])
    def test_outputs_always_valid(self, model, idle):
        generator = AssignmentGenerator(model, 4, 3, rng=7)
        for _ in range(20):
            assignment = generator.random_assignment(idle)
            assert is_valid_assignment(assignment, model, 4, 3)

    def test_full_assignment_is_full(self, model):
        generator = AssignmentGenerator(model, 3, 2, rng=5)
        for _ in range(10):
            assert generator.random_full_assignment().is_full(3, 2)

    def test_invalid_dimensions_rejected(self, model):
        with pytest.raises(ValueError):
            AssignmentGenerator(model, 0, 1)


class TestDynamicTraffic:
    def test_deterministic_given_seed(self, model):
        a = list(dynamic_traffic(model, 4, 2, steps=50, seed=9))
        b = list(dynamic_traffic(model, 4, 2, steps=50, seed=9))
        assert a == b

    def test_every_prefix_is_a_legal_assignment(self, model):
        live = {}
        for event in dynamic_traffic(model, 4, 2, steps=200, seed=3):
            if event.kind == "setup":
                assert event.connection_id not in live
                live[event.connection_id] = event.connection
            else:
                assert live.pop(event.connection_id) == event.connection
            # The live set must always be a valid assignment.
            assignment = MulticastAssignment(live.values())
            assert is_valid_assignment(assignment, model, 4, 2)

    def test_connections_respect_model(self, model):
        for event in dynamic_traffic(model, 5, 3, steps=150, seed=11):
            if event.kind == "setup":
                assert is_valid_connection(event.connection, model, 5, 3)

    def test_max_fanout_respected(self, model):
        for event in dynamic_traffic(
            model, 6, 2, steps=100, seed=2, max_fanout=2
        ):
            if event.kind == "setup":
                assert event.connection.fanout <= 2

    def test_teardowns_reference_live_connections(self, model):
        live = set()
        for event in dynamic_traffic(model, 3, 2, steps=150, seed=4):
            if event.kind == "setup":
                live.add(event.connection_id)
            else:
                assert event.connection_id in live
                live.discard(event.connection_id)

    def test_bad_fanout_cap_rejected(self, model):
        with pytest.raises(ValueError):
            list(dynamic_traffic(model, 3, 1, steps=1, seed=0, max_fanout=0))

    def test_msw_connections_single_wavelength(self):
        for event in dynamic_traffic(
            MulticastModel.MSW, 4, 3, steps=80, seed=6
        ):
            if event.kind == "setup":
                wavelengths = {
                    d.wavelength for d in event.connection.destinations
                }
                assert wavelengths == {event.connection.source.wavelength}

    def test_msdw_destinations_uniform(self):
        for event in dynamic_traffic(
            MulticastModel.MSDW, 4, 3, steps=80, seed=6
        ):
            if event.kind == "setup":
                wavelengths = {
                    d.wavelength for d in event.connection.destinations
                }
                assert len(wavelengths) == 1

    def test_source_endpoint_exclusive_while_live(self, model):
        live_sources: dict[int, Endpoint] = {}
        for event in dynamic_traffic(model, 4, 2, steps=200, seed=8):
            if event.kind == "setup":
                assert event.connection.source not in live_sources.values()
                live_sources[event.connection_id] = event.connection.source
            else:
                del live_sources[event.connection_id]
