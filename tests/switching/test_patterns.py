"""Tests for the canonical traffic patterns."""

from __future__ import annotations

import pytest

from repro.core.corrected import CorrectedBound
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.patterns import (
    bit_reversal,
    broadcast,
    identity,
    perfect_shuffle,
    ring_multicast,
    saturating_multicast,
)
from repro.switching.validity import is_valid_assignment

ALL_PATTERNS = [
    ("identity", lambda n, k: identity(n, k)),
    ("shuffle", lambda n, k: perfect_shuffle(n, k)),
    ("broadcast", lambda n, k: broadcast(n, k)),
    ("ring", lambda n, k: ring_multicast(n, k)),
    ("saturating", lambda n, k: saturating_multicast(n, k)),
]


class TestValidity:
    @pytest.mark.parametrize("name,factory", ALL_PATTERNS)
    @pytest.mark.parametrize("n_ports,k", [(4, 1), (6, 2), (8, 3)])
    def test_patterns_are_legal_msw_assignments(self, name, factory, n_ports, k):
        assignment = factory(n_ports, k)
        assert is_valid_assignment(assignment, MulticastModel.MSW, n_ports, k)

    def test_bit_reversal_power_of_two(self):
        assignment = bit_reversal(8, 2)
        assert is_valid_assignment(assignment, MulticastModel.MSW, 8, 2)
        with pytest.raises(ValueError, match="power of two"):
            bit_reversal(6, 1)


class TestStructure:
    def test_identity_unicast(self):
        assignment = identity(4, 2)
        assert all(c.is_unicast() for c in assignment)
        assert assignment.is_full(4, 2)

    def test_shuffle_is_permutation(self):
        assignment = perfect_shuffle(8, 1)
        targets = sorted(
            next(iter(c.destinations)).port for c in assignment
        )
        assert targets == list(range(8))

    def test_bit_reversal_involution(self):
        assignment = bit_reversal(8, 1)
        mapping = {
            c.source.port: next(iter(c.destinations)).port for c in assignment
        }
        for source, target in mapping.items():
            assert mapping[target] == source

    def test_broadcast_saturates_outputs(self):
        assignment = broadcast(5, 3)
        assert assignment.is_full(5, 3)
        assert all(c.fanout == 5 for c in assignment)
        assert len(assignment) == 3

    def test_ring_windows(self):
        assignment = ring_multicast(6, 1, window=3)
        assert assignment.is_full(6, 1)
        assert all(c.fanout == 3 for c in assignment)

    def test_ring_window_validation(self):
        with pytest.raises(ValueError):
            ring_multicast(4, 1, window=0)

    def test_saturating_balances_fanout(self):
        assignment = saturating_multicast(10, 1, sources=3)
        fanouts = sorted(c.fanout for c in assignment)
        assert sum(fanouts) == 10
        assert fanouts[-1] - fanouts[0] <= 1

    def test_saturating_source_validation(self):
        with pytest.raises(ValueError):
            saturating_multicast(4, 1, sources=9)


class TestRoutability:
    @pytest.mark.parametrize("name,factory", ALL_PATTERNS)
    def test_every_pattern_routes_at_the_bound(self, name, factory):
        """Structured worst cases must route on a bound-sized network, in
        arrival order, without backtracking."""
        n, r, k = 2, 3, 2
        bound = CorrectedBound.compute(
            n, r, k, Construction.MSW_DOMINANT, MulticastModel.MSW
        )
        net = ThreeStageNetwork(
            n, r, bound.m_min, k, x=bound.best_x
        )
        assignment = factory(n * r, k)
        for connection in assignment:
            net.connect(connection)
        assert net.blocks == 0
        net.check_invariants()

    def test_broadcast_through_single_middle_per_wavelength(self):
        """A broadcast tree fits through x middles (here min(n-1, r))."""
        n, r, k = 3, 3, 2
        bound = CorrectedBound.compute(
            n, r, k, Construction.MSW_DOMINANT, MulticastModel.MSW
        )
        net = ThreeStageNetwork(n, r, bound.m_min, k, x=bound.best_x)
        for connection in broadcast(n * r, k):
            cid = net.connect(connection)
            assert len(net.active_connections[cid].branches) <= net.x
