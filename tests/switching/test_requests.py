"""Tests for endpoints, connections and assignments."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection


class TestEndpoint:
    def test_ordering_and_equality(self):
        assert Endpoint(0, 1) < Endpoint(1, 0)
        assert Endpoint(2, 1) == Endpoint(2, 1)
        assert hash(Endpoint(2, 1)) == hash(Endpoint(2, 1))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Endpoint(-1, 0)
        with pytest.raises(ValueError):
            Endpoint(0, -2)

    def test_str(self):
        assert "lambda_3" in str(Endpoint(1, 3))


class TestMulticastConnection:
    def test_basic_construction(self):
        connection = MulticastConnection(
            Endpoint(0, 0), [Endpoint(1, 0), Endpoint(2, 1)]
        )
        assert connection.fanout == 2
        assert connection.destination_ports == {1, 2}

    def test_empty_destinations_rejected(self):
        with pytest.raises(ValueError):
            MulticastConnection(Endpoint(0, 0), [])

    def test_duplicate_output_port_rejected(self):
        """Section 2.1: at most one wavelength per output port per connection."""
        with pytest.raises(ValueError):
            MulticastConnection(
                Endpoint(0, 0), [Endpoint(1, 0), Endpoint(1, 1)]
            )

    def test_duplicate_endpoint_collapses(self):
        connection = MulticastConnection(
            Endpoint(0, 0), [Endpoint(1, 0), Endpoint(1, 0)]
        )
        assert connection.fanout == 1

    def test_unicast(self):
        assert MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0)]).is_unicast()

    def test_destination_wavelengths_sorted_by_port(self):
        connection = MulticastConnection(
            Endpoint(0, 0), [Endpoint(2, 1), Endpoint(1, 0)]
        )
        assert connection.destination_wavelengths == (0, 1)

    def test_loopback_allowed(self):
        """A node may send to its own port number (input/output sides differ)."""
        connection = MulticastConnection(Endpoint(3, 0), [Endpoint(3, 0)])
        assert connection.fanout == 1


class TestMulticastAssignment:
    def test_empty(self):
        assignment = MulticastAssignment.empty()
        assert len(assignment) == 0
        assert assignment.total_fanout() == 0
        assert not assignment.is_full(2, 2)

    def test_shared_source_rejected(self):
        a = MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0)])
        b = MulticastConnection(Endpoint(0, 0), [Endpoint(2, 0)])
        with pytest.raises(ValueError):
            MulticastAssignment([a, b])

    def test_shared_output_endpoint_rejected(self):
        a = MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0)])
        b = MulticastConnection(Endpoint(1, 0), [Endpoint(1, 0)])
        with pytest.raises(ValueError):
            MulticastAssignment([a, b])

    def test_same_port_different_wavelength_across_connections_ok(self):
        """The WDM feature: a destination node can receive several messages."""
        a = MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0)])
        b = MulticastConnection(Endpoint(2, 1), [Endpoint(1, 1)])
        assignment = MulticastAssignment([a, b])
        assert len(assignment) == 2

    def test_mapping_roundtrip(self):
        mapping = {
            Endpoint(0, 0): Endpoint(1, 0),
            Endpoint(1, 0): Endpoint(1, 0),
            Endpoint(2, 1): Endpoint(0, 1),
        }
        assignment = MulticastAssignment.from_mapping(mapping)
        assert assignment.to_mapping() == mapping
        # Outputs sharing a source form a single multicast connection.
        assert len(assignment) == 2

    def test_is_full(self):
        mapping = {
            Endpoint(p, w): Endpoint(0, w) for p in range(2) for w in range(2)
        }
        assignment = MulticastAssignment.from_mapping(mapping)
        assert assignment.is_full(2, 2)
        assert not assignment.is_full(3, 2)

    def test_used_endpoints(self):
        a = MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0), Endpoint(2, 0)])
        assignment = MulticastAssignment([a])
        assert assignment.used_input_endpoints() == {Endpoint(0, 0)}
        assert assignment.used_output_endpoints() == {Endpoint(1, 0), Endpoint(2, 0)}

    def test_equality_and_hash(self):
        a = MulticastAssignment([MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0)])])
        b = MulticastAssignment([MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0)])])
        assert a == b and hash(a) == hash(b)

    @given(
        st.dictionaries(
            st.builds(Endpoint, st.integers(0, 3), st.integers(0, 2)),
            st.builds(Endpoint, st.integers(0, 3), st.integers(0, 2)),
            max_size=10,
        )
    )
    def test_from_mapping_roundtrip_property(self, mapping):
        from hypothesis import assume

        # Skip structurally invalid mappings: one connection may not use
        # two wavelengths at the same output port.
        groups: dict[Endpoint, set[int]] = {}
        for output_endpoint, input_endpoint in mapping.items():
            ports = groups.setdefault(input_endpoint, set())
            assume(output_endpoint.port not in ports)
            ports.add(output_endpoint.port)
        assignment = MulticastAssignment.from_mapping(mapping)
        assert assignment.to_mapping() == mapping
        assert assignment.total_fanout() == len(mapping)
