"""Tests for the model-specific validity rules."""

from __future__ import annotations

import pytest

from repro.core.models import MulticastModel
from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection
from repro.switching.validity import (
    ValidityError,
    check_assignment,
    check_connection,
    is_valid_assignment,
    is_valid_connection,
)


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestEndpointRanges:
    def test_port_out_of_range(self, model):
        with pytest.raises(ValidityError, match="port"):
            check_connection(conn((5, 0), (0, 0)), model, 4, 2)
        with pytest.raises(ValidityError, match="port"):
            check_connection(conn((0, 0), (4, 0)), model, 4, 2)

    def test_wavelength_out_of_range(self, model):
        with pytest.raises(ValidityError, match="wavelength"):
            check_connection(conn((0, 2), (1, 0)), model, 4, 2)
        with pytest.raises(ValidityError, match="wavelength"):
            check_connection(conn((0, 0), (1, 3)), model, 4, 2)


class TestModelRules:
    def test_msw_same_wavelength_everywhere(self):
        ok = conn((0, 1), (1, 1), (2, 1))
        bad_dest = conn((0, 1), (1, 0))
        bad_mixed = conn((0, 0), (1, 0), (2, 1))
        assert is_valid_connection(ok, MulticastModel.MSW, 4, 2)
        assert not is_valid_connection(bad_dest, MulticastModel.MSW, 4, 2)
        assert not is_valid_connection(bad_mixed, MulticastModel.MSW, 4, 2)

    def test_msdw_source_free_destinations_uniform(self):
        ok = conn((0, 0), (1, 1), (2, 1))
        bad = conn((0, 0), (1, 0), (2, 1))
        assert is_valid_connection(ok, MulticastModel.MSDW, 4, 2)
        assert not is_valid_connection(bad, MulticastModel.MSDW, 4, 2)

    def test_maw_anything_goes(self):
        mixed = conn((0, 1), (1, 0), (2, 1), (3, 0))
        assert is_valid_connection(mixed, MulticastModel.MAW, 4, 2)

    def test_model_strength_containment(self):
        """Valid under a model => valid under every stronger model."""
        connections = [
            conn((0, 0), (1, 0)),
            conn((0, 0), (1, 1), (2, 1)),
            conn((0, 1), (1, 0), (2, 1)),
        ]
        ordered = [MulticastModel.MSW, MulticastModel.MSDW, MulticastModel.MAW]
        for connection in connections:
            for weaker_index, weaker in enumerate(ordered):
                if is_valid_connection(connection, weaker, 4, 2):
                    for stronger in ordered[weaker_index:]:
                        assert is_valid_connection(connection, stronger, 4, 2)


class TestAssignmentChecks:
    def test_valid_assignment_passes(self):
        assignment = MulticastAssignment(
            [conn((0, 0), (1, 0)), conn((1, 0), (2, 0), (3, 0))]
        )
        check_assignment(assignment, MulticastModel.MSW, 4, 1)

    def test_invalid_member_connection_caught(self):
        assignment = MulticastAssignment([conn((0, 0), (1, 1))])
        assert not is_valid_assignment(assignment, MulticastModel.MSW, 4, 2)
        assert is_valid_assignment(assignment, MulticastModel.MSDW, 4, 2)

    def test_boolean_wrappers(self, model):
        good = MulticastAssignment([conn((0, 0), (1, 0))])
        assert is_valid_assignment(good, model, 4, 2)
        bad = MulticastAssignment([conn((9, 0), (1, 0))])
        assert not is_valid_assignment(bad, model, 4, 2)
