"""Tests for the exhaustive assignment enumeration oracle."""

from __future__ import annotations

import pytest

from repro.core.models import MulticastModel
from repro.switching.enumeration import (
    count_assignments,
    iter_assignments,
    iter_mappings,
)
from repro.switching.validity import is_valid_assignment


class TestCountsAgainstFirstPrinciples:
    def test_msw_counts_by_hand(self):
        # N=2, k=1: each of 2 outputs picks one of 2 inputs -> 4 full.
        assert count_assignments(MulticastModel.MSW, 2, 1, full=True) == 4
        # ... or idles -> 3^2 = 9 any.
        assert count_assignments(MulticastModel.MSW, 2, 1, full=False) == 9

    def test_maw_counts_by_hand(self):
        # N=1, k=2: outputs (0,w0), (0,w1) must take distinct inputs of 2:
        # P(2,2) = 2 full assignments.
        assert count_assignments(MulticastModel.MAW, 1, 2, full=True) == 2
        # any: P(2,2) + 2*P(2,1)*C(2,1)... = 2 + 4 + 1 = 7? From Lemma 2:
        # sum_j P(2, 2-j) C(2,j) = P(2,2) + P(2,1)*2 + P(2,0) = 2+4+1 = 7.
        assert count_assignments(MulticastModel.MAW, 1, 2, full=False) == 7

    def test_msdw_counts_by_hand(self):
        # N=1, k=2: destinations of a connection live on one port, so both
        # outputs are separate connections with distinct sources: P(2,2)=2,
        # same as MAW for N=1.
        assert count_assignments(MulticastModel.MSDW, 1, 2, full=True) == 2


class TestEnumerationProperties:
    @pytest.mark.parametrize("n_ports,k", [(2, 1), (2, 2), (3, 1)])
    def test_all_yielded_assignments_valid(self, model, n_ports, k):
        for assignment in iter_assignments(model, n_ports, k, full=False):
            assert is_valid_assignment(assignment, model, n_ports, k)

    @pytest.mark.parametrize("n_ports,k", [(2, 1), (2, 2), (3, 1)])
    def test_full_assignments_are_full(self, model, n_ports, k):
        for assignment in iter_assignments(model, n_ports, k, full=True):
            assert assignment.is_full(n_ports, k)

    @pytest.mark.parametrize("n_ports,k", [(2, 2), (3, 1)])
    def test_no_duplicates(self, model, n_ports, k):
        seen = set()
        for assignment in iter_assignments(model, n_ports, k, full=False):
            assert assignment not in seen
            seen.add(assignment)

    @pytest.mark.parametrize("n_ports,k", [(2, 2), (2, 3)])
    def test_model_containment(self, n_ports, k):
        """Every MSW assignment is an MSDW one; every MSDW one a MAW one."""
        msw = set(iter_assignments(MulticastModel.MSW, n_ports, k, full=False))
        msdw = set(iter_assignments(MulticastModel.MSDW, n_ports, k, full=False))
        maw = set(iter_assignments(MulticastModel.MAW, n_ports, k, full=False))
        assert msw < msdw < maw

    def test_full_subset_of_any(self, model):
        full = set(iter_assignments(model, 2, 2, full=True))
        any_ = set(iter_assignments(model, 2, 2, full=False))
        assert full < any_

    def test_invalid_dimensions_rejected(self, model):
        with pytest.raises(ValueError):
            list(iter_mappings(model, 0, 1, full=True))
