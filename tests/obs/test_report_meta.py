"""ObsReport aggregation/export and the shared ResultMeta envelope."""

from __future__ import annotations

import json

from repro import api, obs
from repro.obs.meta import ResultMeta
from repro.obs.report import ObsReport
from repro.perf.cache import CODE_VERSION
from repro.perf.sweeper import ExecutionPlan


def make_plan(**overrides):
    defaults = dict(requested_jobs=1, resolved_jobs=1, executor="serial",
                    units=3, dispatched=3, cache_hits=0, reason="")
    defaults.update(overrides)
    return ExecutionPlan(**defaults)


class TestObsReport:
    def test_collect_snapshots_metrics_trace_and_plan(self):
        with obs.capture(tracer=obs.Tracer()) as run:
            obs.inc("demo.counter", 2)
            run.tracer.emit({"event": "release", "connection_id": 0})
            report = ObsReport.collect(plan=make_plan())
        assert report.metrics["counters"] == {"demo.counter": 2}
        assert report.trace["released"] == 1
        assert report.plan["executor"] == "serial"

    def test_json_round_trip(self):
        report = ObsReport(
            metrics={"counters": {"a": 1}, "timers": {}, "gauges": {}},
            trace={"event": "summary", "attempts": 1, "admitted": 1,
                   "blocked": 0, "released": 0, "causes": {}},
            plan=make_plan().as_dict(),
        )
        assert ObsReport.from_json(report.to_json()) == report

    def test_render_is_human_readable(self):
        report = ObsReport(metrics={"counters": {"net.admit.attempts": 5}})
        rendered = report.render()
        assert "net.admit.attempts = 5" in rendered

    def test_render_empty_report(self):
        assert ObsReport().render()  # non-empty fallback text


class TestResultMeta:
    def test_capture_records_version_and_kernel(self):
        meta = ResultMeta.capture()
        assert meta.code_version == CODE_VERSION
        assert meta.kernel in ("bitmask", "reference")
        assert meta.plan is None and meta.obs is None

    def test_capture_embeds_plan_and_obs_summary(self):
        with obs.capture():
            obs.inc("meta.demo")
            meta = ResultMeta.capture(make_plan(units=7))
        assert meta.plan["units"] == 7
        assert meta.obs["metrics"]["counters"] == {"meta.demo": 1}

    def test_json_round_trip(self):
        meta = ResultMeta.capture(make_plan())
        assert ResultMeta.from_json(meta.to_json()) == meta

    def test_envelope_is_hashable(self):
        meta = ResultMeta.capture(make_plan())
        assert isinstance(hash(meta), int)


class TestSharedEnvelopeOnResults:
    def test_blocking_estimate_carries_and_round_trips_meta(self):
        estimate = api.blocking(
            2, 2, 2, 1, x=1, traffic=api.UniformConfig(steps=60, seeds=(0,)))
        meta = estimate.meta
        assert isinstance(meta, ResultMeta)
        assert meta.plan["units"] == 1
        rebuilt = type(estimate).from_json(estimate.to_json())
        assert rebuilt == estimate
        assert rebuilt.meta == meta

    def test_execution_plan_json_round_trip(self):
        plan = make_plan(executor="process", resolved_jobs=4, reason="")
        assert ExecutionPlan.from_json(plan.to_json()) == plan
        assert json.loads(plan.to_json())["executor"] == "process"

    def test_sweep_estimates_share_one_plan_envelope(self):
        estimates = api.sweep(
            2, 2, 1, [1, 2], x=1,
            traffic=api.UniformConfig(steps=60, seeds=(0,)))
        plans = {e.meta.plan_json for e in estimates}
        assert len(plans) == 1
        assert estimates[0].meta.plan["units"] == 2
