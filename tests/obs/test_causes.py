"""Blocking-cause reconstruction cross-checked against ground truth.

Each scenario drives the network into one of the four contention modes,
asserts ``explain_block`` classifies it correctly, and re-derives the
evidence masks from the numpy link arrays (the ground truth that
``check_invariants`` holds the bitmask caches to).
"""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.multistage.network import BlockedError, ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


def explain_blocked(net, request):
    """Assert ``request`` blocks, then return the reconstructed cause."""
    with pytest.raises(BlockedError):
        net.connect(request)
    net.check_invariants()  # bitmask caches match the numpy ground truth
    assert net.probe_cover(request) is None
    cause = net.explain_block(request)
    return cause


def first_stage_blocked_ground_truth(net, g, wavelength):
    """Recompute the blocked-middles mask from the raw link array."""
    if net.construction is Construction.MSW_DOMINANT:
        return sum(
            1 << j
            for j in range(net.topology.m)
            if net._in_mid[g, j, wavelength]
        )
    return sum(
        1 << j
        for j in range(net.topology.m)
        if all(net._in_mid[g, j, w] for w in range(net.topology.k))
    )


class TestSaturatedWavelength:
    def test_msw_dominant_source_wavelength_busy_everywhere(self):
        net = ThreeStageNetwork(2, 2, 1, 1,
                                construction=Construction.MSW_DOMINANT,
                                model=MulticastModel.MSW, x=1)
        net.connect(conn((0, 0), (0, 0)))
        cause = explain_blocked(net, conn((1, 0), (2, 0)))
        assert cause["kind"] == "saturated_wavelength"
        assert cause["available_middles_mask"] == 0
        assert cause["input_module"] == 0
        assert cause["first_stage_blocked_mask"] == (
            first_stage_blocked_ground_truth(net, 0, 0)
        ) == 0b1


class TestConverterExhaustion:
    def test_maw_dominant_every_wavelength_busy(self):
        net = ThreeStageNetwork(2, 2, 1, 2,
                                construction=Construction.MAW_DOMINANT,
                                model=MulticastModel.MAW, x=1)
        net.connect(conn((0, 0), (0, 0)))
        net.connect(conn((0, 1), (1, 1)))
        cause = explain_blocked(net, conn((1, 0), (2, 0)))
        assert cause["kind"] == "converter_exhaustion"
        assert cause["available_middles_mask"] == 0
        assert cause["first_stage_blocked_mask"] == (
            first_stage_blocked_ground_truth(net, 0, 0)
        ) == 0b1


class TestFullMiddles:
    def test_destination_module_saturated_on_every_middle(self):
        net = ThreeStageNetwork(3, 2, 2, 1,
                                construction=Construction.MSW_DOMINANT,
                                model=MulticastModel.MSW, x=1)
        net.connect(conn((0, 0), (3, 0)), force_middles={0: [1]})
        net.connect(conn((1, 0), (4, 0)), force_middles={1: [1]})
        cause = explain_blocked(net, conn((3, 0), (5, 0)))
        assert cause["kind"] == "full_middles"
        # Both middles are still enterable from input module 1...
        assert cause["available_middles_mask"] == 0b11
        assert cause["first_stage_blocked_mask"] == (
            first_stage_blocked_ground_truth(net, 1, 0)
        ) == 0
        # ...but neither reaches output module 1: its fiber is busy on
        # the needed wavelength on every middle (the raw ground truth).
        assert cause["unreachable_modules"] == [1]
        assert cause["per_destination"] == [[1, 0]]
        for j in range(2):
            assert net._mid_out[j, 1, 0]


class TestNoCover:
    def test_every_module_reachable_but_no_x_cover(self):
        net = ThreeStageNetwork(2, 2, 2, 1,
                                construction=Construction.MSW_DOMINANT,
                                model=MulticastModel.MSW, x=1)
        # Middle 0's fiber to output module 1 and middle 1's fiber to
        # output module 0 are taken by prior connections from the OTHER
        # input module, so the contested source still enters both.
        net.connect(conn((2, 0), (2, 0)), force_middles={0: [1]})
        net.connect(conn((3, 0), (1, 0)), force_middles={1: [0]})
        cause = explain_blocked(net, conn((0, 0), (0, 0), (3, 0)))
        assert cause["kind"] == "no_cover"
        assert cause["available_middles_mask"] == 0b11
        assert cause["unreachable_modules"] == []
        # Each module is covered by exactly the middle whose fiber to it
        # is free -- middle 0 for module 0, middle 1 for module 1 -- and
        # x=1 allows only one of them.
        assert cause["per_destination"] == [[0, 0b01], [1, 0b10]]
        assert cause["x"] == 1

    def test_cause_matches_trace_cause_schema(self):
        from repro.obs.trace import CAUSE_SCHEMA

        net = ThreeStageNetwork(2, 2, 1, 1,
                                construction=Construction.MSW_DOMINANT,
                                model=MulticastModel.MSW, x=1)
        net.connect(conn((0, 0), (0, 0)))
        cause = explain_blocked(net, conn((1, 0), (2, 0)))
        assert set(cause) == set(CAUSE_SCHEMA)
        for name, expected in CAUSE_SCHEMA.items():
            assert isinstance(cause[name], expected), name
