"""Metrics registry semantics and cross-process aggregation."""

from __future__ import annotations

import pytest

from repro import api, obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import merge_snapshots
from repro.perf.sweeper import WorkUnit, _run_chunk_obs


class TestRegistry:
    def test_counters_timers_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.observe("t", 0.25)
        reg.observe("t", 0.75)
        reg.gauge("g", 7.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["timers"] == {"t": [2, 1.0]}
        assert snap["gauges"] == {"g": 7.0}

    def test_merge_sums_counters_and_timers(self):
        a = MetricsRegistry()
        a.inc("x", 2)
        a.observe("t", 1.0)
        b = MetricsRegistry()
        b.inc("x", 3)
        b.inc("y")
        b.observe("t", 2.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"x": 5, "y": 1}
        assert snap["timers"]["t"] == [2, 3.0]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_timeit_records_one_observation(self):
        reg = MetricsRegistry()
        with reg.timeit("span"):
            pass
        count, total = reg.snapshot()["timers"]["span"]
        assert count == 1 and total >= 0.0


class TestMergeSnapshots:
    def test_merges_many_worker_snapshots(self):
        snapshots = []
        for i in range(3):
            reg = MetricsRegistry()
            reg.inc("cells", i + 1)
            snapshots.append(reg.snapshot())
        merged = merge_snapshots(snapshots)
        assert merged["counters"]["cells"] == 6


def _unit_fn(value: int) -> int:
    obs.inc("test.unit_calls")
    return value * 2


class TestChunkRunner:
    def test_run_chunk_obs_ships_a_snapshot(self):
        """The worker-side runner returns results plus a metrics delta."""
        assert not obs.enabled()
        units = [WorkUnit(unit_id=i, fn=_unit_fn, args=(i,)) for i in range(4)]
        results, snapshot = _run_chunk_obs(units)
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert snapshot["counters"]["test.unit_calls"] == 4
        # The runner restores the disabled state it found.
        assert not obs.enabled()

    def test_run_chunk_obs_starts_from_reset_registry(self):
        """Per-chunk snapshots are deltas even on a reused pool worker."""
        obs.REGISTRY.inc("stale.counter", 99)
        try:
            _, snapshot = _run_chunk_obs([WorkUnit(unit_id=0, fn=_unit_fn, args=(1,))])
        finally:
            obs.REGISTRY.reset()
        assert "stale.counter" not in snapshot["counters"]
        assert snapshot["counters"]["test.unit_calls"] == 1


@pytest.fixture
def two_cpus(monkeypatch):
    """Pretend the host has two cores so the process pool engages."""
    monkeypatch.setattr("repro.perf.sweeper._effective_cpus", lambda: 2)


class TestCrossProcessAggregation:
    CONFIG = dict(x=1, traffic=api.UniformConfig(steps=120, seeds=(0, 1)))

    def _counters(self, jobs):
        with obs.capture() as run:
            api.sweep(
                3, 3, 1, [2, 4], execution=api.ExecConfig(jobs=jobs),
                **self.CONFIG,
            )
            return dict(run.metrics.snapshot()["counters"])

    def test_pooled_counters_match_serial(self, two_cpus):
        serial = self._counters(1)
        pooled = self._counters(2)
        keys = [k for k in serial if k.startswith(("net.", "mc.", "route."))]
        assert keys, "expected simulator counters in the serial run"
        for key in keys:
            assert pooled.get(key) == serial[key], key
        assert pooled["sweep.units"] == serial["sweep.units"] == 4

    def test_admission_counters_are_consistent(self, two_cpus):
        counters = self._counters(2)
        assert counters["net.admit.attempts"] == (
            counters["net.admit.admitted"] + counters.get("net.admit.blocked", 0)
        )
        assert counters["mc.cells"] == 4
