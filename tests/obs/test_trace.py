"""Trace JSONL schema: emission, validation, summary invariants."""

from __future__ import annotations

import io
import json

import pytest

from repro import api, obs
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import BlockedError, ThreeStageNetwork
from repro.obs.trace import CAUSE_KINDS, TRACE_SCHEMA, Tracer, validate_record
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestTracer:
    def test_seq_is_monotonic_and_counts_accumulate(self):
        tracer = Tracer()
        tracer.emit({"event": "admit", "connection_id": 0, "source": [0, 0],
                     "destinations": [[1, 0]], "middles": [0],
                     "branches": [[0, 0, [[0, 0]]]]})
        tracer.emit({"event": "release", "connection_id": 0})
        assert [r["seq"] for r in tracer.records] == [0, 1]
        assert tracer.admitted == 1 and tracer.released == 1

    def test_sink_receives_jsonl(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.emit({"event": "release", "connection_id": 3})
        tracer.close()
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [r["event"] for r in lines] == ["release", "summary"]
        assert not tracer.records  # streaming tracers do not accumulate

    def test_summary_causes_sum_to_blocked(self):
        tracer = Tracer()
        cause = dict.fromkeys(
            ("x", "input_module", "source_wavelength", "failed_middles_mask",
             "first_stage_blocked_mask", "available_middles_mask"), 0)
        cause.update(kind="no_cover", destination_modules=[0],
                     unreachable_modules=[], per_destination=[[0, 0]])
        for _ in range(3):
            tracer.emit({"event": "block", "source": [0, 0],
                         "destinations": [[1, 0]], "cause": dict(cause)})
        summary = tracer.summary_record()
        validate_record(dict(summary, seq=99))
        assert summary["blocked"] == 3
        assert sum(summary["causes"].values()) == 3


class TestValidateRecord:
    def test_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown trace event"):
            validate_record({"event": "mystery", "seq": 0})

    def test_rejects_missing_field(self):
        with pytest.raises(ValueError, match="missing field"):
            validate_record({"event": "release", "seq": 0})

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="has type"):
            validate_record({"event": "release", "seq": 0, "connection_id": "x"})

    def test_rejects_unknown_cause_kind(self):
        cause = dict.fromkeys(
            ("x", "input_module", "source_wavelength", "failed_middles_mask",
             "first_stage_blocked_mask", "available_middles_mask"), 0)
        cause.update(kind="gremlins", destination_modules=[],
                     unreachable_modules=[], per_destination=[])
        with pytest.raises(ValueError, match="unknown blocking-cause kind"):
            validate_record({"event": "block", "seq": 0, "source": [0, 0],
                             "destinations": [], "cause": cause})

    def test_rejects_summary_whose_causes_do_not_sum(self):
        with pytest.raises(ValueError, match="sum"):
            validate_record({"event": "summary", "seq": 0, "attempts": 2,
                             "admitted": 1, "blocked": 1, "released": 0,
                             "causes": {}})

    def test_schema_covers_the_emitted_events(self):
        assert set(TRACE_SCHEMA) == {"admit", "block", "release", "summary"}
        # The four Clos kinds plus the structural awg_no_path of the
        # AWG-routed fabric (the full ALL_BLOCK_KINDS taxonomy).
        assert len(CAUSE_KINDS) == 5
        assert "awg_no_path" in CAUSE_KINDS


class TestNetworkEmitsTrace:
    def test_connect_block_release_all_traced(self):
        net = ThreeStageNetwork(2, 2, 1, 1, construction=Construction.MSW_DOMINANT,
                                model=MulticastModel.MSW, x=1)
        sink = io.StringIO()
        tracer = Tracer(sink)
        with obs.capture(tracer=tracer):
            cid = net.connect(conn((0, 0), (0, 0)))
            with pytest.raises(BlockedError):
                net.connect(conn((1, 0), (2, 0)))
            net.disconnect(cid)
        tracer.close()
        records = [json.loads(line) for line in sink.getvalue().splitlines()]
        for record in records:
            validate_record(record)
        assert [r["event"] for r in records] == [
            "admit", "block", "release", "summary"]
        summary = records[-1]
        assert summary["attempts"] == 2
        assert summary["causes"] == {"saturated_wavelength": 1}

    def test_monte_carlo_trace_blocked_matches_estimate(self):
        """The trace's blocked total IS the blocking-probability numerator."""
        tracer = Tracer()
        with obs.capture(tracer=tracer):
            estimate = api.blocking(
                2, 2, 2, 1, x=1,
                traffic=api.UniformConfig(steps=150, seeds=(0, 1)),
            )
        assert tracer.blocked == estimate.blocked
        assert tracer.admitted + tracer.blocked == estimate.attempts
        assert sum(tracer.cause_counts.values()) == estimate.blocked
