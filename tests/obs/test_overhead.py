"""Zero-cost-when-off guards: no allocations, no work, no result drift."""

from __future__ import annotations

import sys

import pytest

from repro import api, obs
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import BlockedError, ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestDisabledHooksAllocateNothing:
    def test_hook_calls_do_zero_allocations(self):
        """The disabled admit/block/release hooks touch no heap memory."""
        assert not obs.enabled()
        net = object()  # the hooks must return before looking at it
        # Warm up: interned strings, bytecode caches, method wrappers.
        for _ in range(10):
            obs.on_admit(net, None)
            obs.on_release(net, 0)
            obs.inc("warm")
            obs.observe("warm", 0.0)
        # The loop machinery itself allocates (range iterator); charge
        # the hooks only for what an identical empty loop does not.
        before = sys.getallocatedblocks()
        for _ in range(1000):
            pass
        baseline = sys.getallocatedblocks() - before
        before = sys.getallocatedblocks()
        for _ in range(1000):
            obs.on_admit(net, None)
            obs.on_release(net, 0)
            obs.inc("x")
            obs.observe("x", 0.0)
        hooks = sys.getallocatedblocks() - before
        assert hooks <= baseline

    def test_enabled_reads_one_flag(self):
        assert obs.enabled() is False
        obs.enable()
        try:
            assert obs.enabled() is True
        finally:
            obs.disable()
            obs.reset()


class TestDisabledPathDoesNoWork:
    def test_blocked_connect_skips_cause_reconstruction(self, monkeypatch):
        """With obs off, connect never pays for explain_block."""
        net = ThreeStageNetwork(2, 2, 1, 1,
                                construction=Construction.MSW_DOMINANT,
                                model=MulticastModel.MSW, x=1)
        monkeypatch.setattr(
            ThreeStageNetwork, "explain_block",
            lambda self, request: pytest.fail("explain_block ran while obs off"),
        )
        net.connect(conn((0, 0), (0, 0)))
        assert not obs.enabled()
        with pytest.raises(BlockedError):
            net.connect(conn((1, 0), (2, 0)))

    def test_disabled_run_records_nothing(self):
        obs.reset()
        assert not obs.enabled()
        api.blocking(2, 2, 2, 1, x=1,
                     traffic=api.UniformConfig(steps=50, seeds=(0,)))
        assert obs.REGISTRY.snapshot()["counters"] == {}


class TestObsOnDoesNotChangeResults:
    def test_estimates_bit_identical_on_vs_off(self):
        traffic = api.UniformConfig(steps=150, seeds=(0, 1))
        off = api.blocking(3, 3, 2, 1, x=1, traffic=traffic)
        with obs.capture():
            on = api.blocking(3, 3, 2, 1, x=1, traffic=traffic)
        assert (off.attempts, off.blocked, off.probability) == (
            on.attempts, on.blocked, on.probability)
        assert off == on  # meta is excluded from equality by design
