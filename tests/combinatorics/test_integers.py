"""Tests for the exact integer primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.integers import (
    binomial,
    falling_factorial,
    integer_root,
    min_base_exceeding,
    power_exceeds,
)


class TestFallingFactorial:
    def test_empty_product_is_one(self):
        assert falling_factorial(7, 0) == 1
        assert falling_factorial(0, 0) == 1

    def test_single_factor(self):
        assert falling_factorial(9, 1) == 9

    def test_known_values(self):
        assert falling_factorial(5, 3) == 5 * 4 * 3
        assert falling_factorial(10, 10) == math.factorial(10)

    def test_too_long_injection_is_zero(self):
        assert falling_factorial(3, 4) == 0
        assert falling_factorial(0, 1) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            falling_factorial(5, -1)

    @given(st.integers(0, 40), st.integers(0, 40))
    def test_matches_factorial_ratio(self, x: int, i: int):
        if i <= x:
            assert falling_factorial(x, i) == math.factorial(x) // math.factorial(x - i)
        else:
            assert falling_factorial(x, i) == 0

    @given(st.integers(1, 30), st.integers(1, 30))
    def test_recurrence(self, x: int, i: int):
        """P(x, i) = x * P(x-1, i-1)."""
        assert falling_factorial(x, i) == x * falling_factorial(x - 1, i - 1)


class TestBinomial:
    def test_known_values(self):
        assert binomial(5, 2) == 10
        assert binomial(6, 0) == 1
        assert binomial(6, 6) == 1

    def test_out_of_range_is_zero(self):
        assert binomial(4, 5) == 0
        assert binomial(4, -1) == 0
        assert binomial(-1, 0) == 0

    @given(st.integers(0, 60), st.integers(0, 60))
    def test_symmetry(self, n: int, j: int):
        assert binomial(n, j) == binomial(n, n - j) if 0 <= j <= n else True

    @given(st.integers(1, 50), st.integers(0, 50))
    def test_pascal(self, n: int, j: int):
        assert binomial(n, j) == binomial(n - 1, j - 1) + binomial(n - 1, j)


class TestIntegerRoot:
    def test_small_values(self):
        assert integer_root(0, 3) == 0
        assert integer_root(1, 7) == 1
        assert integer_root(8, 3) == 2
        assert integer_root(9, 3) == 2
        assert integer_root(26, 3) == 2
        assert integer_root(27, 3) == 3

    def test_degree_one(self):
        assert integer_root(12345, 1) == 12345

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            integer_root(-1, 2)
        with pytest.raises(ValueError):
            integer_root(4, 0)

    def test_huge_value_exact(self):
        value = 10**60 + 12345
        root = integer_root(value, 3)
        assert root**3 <= value < (root + 1) ** 3

    @given(st.integers(0, 10**18), st.integers(1, 12))
    def test_floor_property(self, value: int, degree: int):
        root = integer_root(value, degree)
        assert root**degree <= value
        assert (root + 1) ** degree > value

    @given(st.integers(0, 10**6), st.integers(1, 8))
    def test_exact_powers_roundtrip(self, base: int, degree: int):
        assert integer_root(base**degree, degree) == base


class TestPowerExceeds:
    @given(st.integers(0, 1000), st.integers(0, 20), st.integers(-5, 10**12))
    def test_matches_direct_computation(self, base: int, exponent: int, bound: int):
        assert power_exceeds(base, exponent, bound) == (base**exponent > bound)

    def test_huge_shortcut(self):
        assert power_exceeds(2, 10**6, 10**300)


class TestMinBaseExceeding:
    def test_small_cases(self):
        assert min_base_exceeding(0, 1) == 1
        assert min_base_exceeding(8, 3) == 3  # 2^3 = 8 not > 8
        assert min_base_exceeding(7, 3) == 2
        assert min_base_exceeding(26, 3) == 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            min_base_exceeding(-1, 2)
        with pytest.raises(ValueError):
            min_base_exceeding(5, 0)

    @given(st.integers(0, 10**12), st.integers(1, 10))
    def test_minimality(self, bound: int, exponent: int):
        s = min_base_exceeding(bound, exponent)
        assert s**exponent > bound
        assert s == 0 or (s - 1) ** exponent <= bound
