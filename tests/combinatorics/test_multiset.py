"""Tests for the destination multiset algebra (paper eqs. (2)-(5))."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.multiset import DestinationMultiset


@st.composite
def multisets(draw, r_range=(1, 6), k_range=(1, 4)):
    r = draw(st.integers(*r_range))
    k = draw(st.integers(*k_range))
    counts = draw(st.lists(st.integers(0, k), min_size=r, max_size=r))
    return DestinationMultiset(counts, k)


@st.composite
def multiset_pairs(draw):
    r = draw(st.integers(1, 6))
    k = draw(st.integers(1, 4))
    a = draw(st.lists(st.integers(0, k), min_size=r, max_size=r))
    b = draw(st.lists(st.integers(0, k), min_size=r, max_size=r))
    return DestinationMultiset(a, k), DestinationMultiset(b, k)


class TestConstruction:
    def test_empty(self):
        m = DestinationMultiset.empty(4, 2)
        assert m.counts == (0, 0, 0, 0)
        assert m.is_null()
        assert m.total() == 0

    def test_from_elements(self):
        m = DestinationMultiset.from_elements([0, 2, 2], r=3, k=2)
        assert m.counts == (1, 0, 2)
        assert m.multiplicity(2) == 2

    def test_from_elements_over_cap_rejected(self):
        with pytest.raises(ValueError):
            DestinationMultiset.from_elements([1, 1, 1], r=2, k=2)

    def test_from_elements_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DestinationMultiset.from_elements([5], r=2, k=2)

    def test_multiplicity_bounds_enforced(self):
        with pytest.raises(ValueError):
            DestinationMultiset([3], k=2)
        with pytest.raises(ValueError):
            DestinationMultiset([-1], k=2)
        with pytest.raises(ValueError):
            DestinationMultiset([0], k=0)


class TestPaperSemantics:
    def test_cardinality_counts_saturated_elements(self):
        """Eq. (4): |M| = #{p : multiplicity(p) == k}."""
        m = DestinationMultiset([2, 1, 2, 0], k=2)
        assert m.cardinality() == 2
        assert m.saturated_elements() == {0, 2}
        assert m.usable_elements() == {1, 3}

    def test_null_iff_no_saturation(self):
        """Eq. (5): M = null iff |M| = 0 (NOT iff all zero)."""
        assert DestinationMultiset([1, 1], k=2).is_null()
        assert not DestinationMultiset([2, 0], k=2).is_null()

    def test_intersection_is_elementwise_min(self):
        """Eq. (3): usable through {j, h} == usable through M_j `intersect` M_h."""
        a = DestinationMultiset([2, 1, 0], k=2)
        b = DestinationMultiset([2, 2, 1], k=2)
        assert a.intersect(b).counts == (2, 1, 0)

    @given(multiset_pairs())
    def test_intersection_usability_semantics(self, pair):
        """p unusable via the pair iff saturated in both (the paper's point)."""
        a, b = pair
        meet = a.intersect(b)
        for p in range(a.r):
            through_either = (
                a.multiplicity(p) < a.k or b.multiplicity(p) < b.k
            )
            assert (meet.multiplicity(p) < meet.k) == through_either


class TestAlgebraProperties:
    @given(multiset_pairs())
    def test_intersection_commutative(self, pair):
        a, b = pair
        assert a.intersect(b) == b.intersect(a)

    @given(multisets())
    def test_intersection_idempotent(self, m):
        assert m.intersect(m) == m

    @given(multisets())
    def test_intersect_with_empty(self, m):
        empty = DestinationMultiset.empty(m.r, m.k)
        assert m.intersect(empty) == empty

    @given(multiset_pairs())
    def test_intersection_shrinks_cardinality(self, pair):
        a, b = pair
        meet = a.intersect(b)
        assert meet.cardinality() <= min(a.cardinality(), b.cardinality())

    def test_incompatible_multisets_rejected(self):
        a = DestinationMultiset([0, 0], k=2)
        b = DestinationMultiset([0], k=2)
        c = DestinationMultiset([0, 0], k=3)
        with pytest.raises(ValueError):
            a.intersect(b)
        with pytest.raises(ValueError):
            a.intersect(c)

    def test_intersect_all(self):
        sets = [
            DestinationMultiset([2, 2, 1], k=2),
            DestinationMultiset([2, 1, 2], k=2),
            DestinationMultiset([1, 2, 2], k=2),
        ]
        assert DestinationMultiset.intersect_all(sets).counts == (1, 1, 1)

    def test_intersect_all_empty_rejected(self):
        with pytest.raises(ValueError):
            DestinationMultiset.intersect_all([])


class TestMutatorsAndViews:
    def test_add_remove_roundtrip(self):
        m = DestinationMultiset([1, 0], k=2)
        grown = m.add(1)
        assert grown.counts == (1, 1)
        assert grown.remove(1) == m

    def test_add_over_cap_rejected(self):
        with pytest.raises(ValueError):
            DestinationMultiset([2], k=2).add(0)

    def test_restrict(self):
        m = DestinationMultiset([2, 1, 2], k=2)
        assert m.restrict([0]).counts == (2, 0, 0)
        assert m.restrict([]).is_null()

    def test_iteration_expands_multiplicity(self):
        m = DestinationMultiset([2, 0, 1], k=2)
        assert sorted(m) == [0, 0, 2]

    def test_hash_and_eq(self):
        a = DestinationMultiset([1, 2], k=2)
        b = DestinationMultiset([1, 2], k=2)
        c = DestinationMultiset([1, 2], k=3)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_nonzero_elements(self):
        text = repr(DestinationMultiset([0, 2], k=2))
        assert "1^2" in text
