"""Tests for the integer polynomial generating functions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.polynomials import IntPolynomial

coeff_lists = st.lists(st.integers(-50, 50), max_size=8)


def poly(coeffs: list[int]) -> IntPolynomial:
    return IntPolynomial(coeffs)


class TestConstruction:
    def test_trailing_zeros_normalized(self):
        assert poly([1, 2, 0, 0]) == poly([1, 2])
        assert poly([0, 0]) == IntPolynomial.zero()

    def test_zero_and_one(self):
        assert not IntPolynomial.zero()
        assert IntPolynomial.one().coefficients == (1,)
        assert IntPolynomial.zero().degree == -1

    def test_monomial(self):
        m = IntPolynomial.monomial(3, 5)
        assert m.coefficient(3) == 5
        assert m.coefficient(2) == 0
        assert m.degree == 3

    def test_monomial_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            IntPolynomial.monomial(-1)

    def test_coefficient_out_of_range(self):
        p = poly([1, 2])
        assert p.coefficient(10) == 0
        with pytest.raises(ValueError):
            p.coefficient(-1)


class TestArithmetic:
    @given(coeff_lists, coeff_lists)
    def test_addition_matches_evaluation(self, a: list[int], b: list[int]):
        pa, pb = poly(a), poly(b)
        for point in (-2, 0, 1, 3):
            assert (pa + pb)(point) == pa(point) + pb(point)

    @given(coeff_lists, coeff_lists)
    def test_multiplication_matches_evaluation(self, a: list[int], b: list[int]):
        pa, pb = poly(a), poly(b)
        for point in (-2, 0, 1, 3):
            assert (pa * pb)(point) == pa(point) * pb(point)

    @given(coeff_lists, coeff_lists)
    def test_commutativity(self, a: list[int], b: list[int]):
        assert poly(a) * poly(b) == poly(b) * poly(a)
        assert poly(a) + poly(b) == poly(b) + poly(a)

    @given(coeff_lists)
    def test_identities(self, a: list[int]):
        pa = poly(a)
        assert pa * IntPolynomial.one() == pa
        assert pa * IntPolynomial.zero() == IntPolynomial.zero()
        assert pa + IntPolynomial.zero() == pa

    @given(coeff_lists, st.integers(0, 5))
    def test_power_matches_repeated_multiplication(self, a: list[int], exp: int):
        pa = poly(a)
        expected = IntPolynomial.one()
        for _ in range(exp):
            expected = expected * pa
        assert pa**exp == expected

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            poly([1, 1]) ** -1

    @given(coeff_lists, st.integers(-10, 10))
    def test_scalar_multiplication(self, a: list[int], scalar: int):
        pa = poly(a)
        assert (pa * scalar)(3) == scalar * pa(3)
        assert (scalar * pa) == pa * scalar


class TestWeightedSum:
    def test_basic(self):
        p = poly([2, 3, 4])  # 2 + 3z + 4z^2
        assert p.weighted_sum([10, 100, 1000]) == 2 * 10 + 3 * 100 + 4 * 1000

    def test_extra_weights_ignored(self):
        assert poly([1]).weighted_sum([5, 6, 7]) == 5

    def test_too_few_weights_rejected(self):
        with pytest.raises(ValueError):
            poly([1, 2, 3]).weighted_sum([1])

    def test_zero_polynomial(self):
        assert IntPolynomial.zero().weighted_sum([]) == 0


class TestDunder:
    def test_iteration_and_len(self):
        p = poly([1, 0, 2])
        assert list(p) == [1, 0, 2]
        assert len(p) == 3

    def test_hash_consistency(self):
        assert hash(poly([1, 2])) == hash(poly([1, 2, 0]))

    def test_repr_roundtrip(self):
        p = poly([1, -2, 3])
        assert eval(repr(p)) == p  # noqa: S307 - controlled input
