"""Tests for set-partition enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.partitions import (
    count_partitions_into,
    iter_set_partitions,
    iter_set_partitions_into,
)
from repro.combinatorics.stirling import bell_number, stirling2


class TestIterSetPartitions:
    def test_empty_set(self):
        assert list(iter_set_partitions([])) == [[]]

    def test_singleton(self):
        assert list(iter_set_partitions([7])) == [[[7]]]

    def test_two_elements(self):
        partitions = [
            sorted(sorted(block) for block in partition)
            for partition in iter_set_partitions([1, 2])
        ]
        assert sorted(partitions) == [[[1], [2]], [[1, 2]]]

    @given(st.integers(0, 8))
    def test_count_is_bell(self, n: int):
        items = list(range(n))
        assert sum(1 for _ in iter_set_partitions(items)) == bell_number(n)

    @given(st.integers(1, 7))
    def test_partitions_are_valid_and_distinct(self, n: int):
        items = list(range(n))
        seen = set()
        for partition in iter_set_partitions(items):
            flattened = sorted(x for block in partition for x in block)
            assert flattened == items, "blocks must partition the set"
            assert all(block for block in partition), "no empty blocks"
            key = frozenset(frozenset(block) for block in partition)
            assert key not in seen, "duplicate partition emitted"
            seen.add(key)


class TestIterSetPartitionsInto:
    @given(st.integers(0, 7), st.integers(0, 8))
    def test_count_is_stirling(self, n: int, blocks: int):
        items = list(range(n))
        count = sum(1 for _ in iter_set_partitions_into(items, blocks))
        assert count == stirling2(n, blocks)

    def test_block_count_respected(self):
        for partition in iter_set_partitions_into(list(range(5)), 3):
            assert len(partition) == 3


class TestCountPartitionsInto:
    @pytest.mark.parametrize(
        "n,blocks,expected", [(4, 2, 7), (5, 3, 25), (6, 1, 1), (6, 6, 1), (3, 5, 0)]
    )
    def test_known(self, n: int, blocks: int, expected: int):
        assert count_partitions_into(n, blocks) == expected
