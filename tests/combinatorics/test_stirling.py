"""Tests for Stirling and Bell numbers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.integers import binomial, falling_factorial
from repro.combinatorics.stirling import bell_number, stirling2, stirling2_row


KNOWN_ROWS = {
    0: (1,),
    1: (0, 1),
    2: (0, 1, 1),
    3: (0, 1, 3, 1),
    4: (0, 1, 7, 6, 1),
    5: (0, 1, 15, 25, 10, 1),
    6: (0, 1, 31, 90, 65, 15, 1),
}


class TestStirling2:
    @pytest.mark.parametrize("n,row", sorted(KNOWN_ROWS.items()))
    def test_known_rows(self, n: int, row: tuple[int, ...]):
        assert stirling2_row(n) == row

    def test_out_of_range_zero(self):
        assert stirling2(3, 4) == 0
        assert stirling2(3, -1) == 0
        assert stirling2(4, 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            stirling2(-1, 0)
        with pytest.raises(ValueError):
            stirling2_row(-2)

    @given(st.integers(1, 40), st.integers(1, 40))
    def test_recurrence(self, n: int, j: int):
        assert stirling2(n, j) == j * stirling2(n - 1, j) + stirling2(n - 1, j - 1)

    @given(st.integers(0, 25), st.integers(0, 25))
    def test_surjection_identity(self, n: int, x: int):
        """x^n = sum_j S(n, j) P(x, j): classify functions by image size."""
        total = sum(
            stirling2(n, j) * falling_factorial(x, j) for j in range(n + 1)
        )
        assert total == x**n

    @given(st.integers(1, 30))
    def test_singleton_and_full_partitions(self, n: int):
        assert stirling2(n, 1) == 1
        assert stirling2(n, n) == 1
        assert stirling2(n, 2) == 2 ** (n - 1) - 1

    @given(st.integers(2, 25))
    def test_pairs_column(self, n: int):
        """S(n, n-1) = C(n, 2): exactly one block of size two."""
        assert stirling2(n, n - 1) == binomial(n, 2)


class TestBell:
    def test_known_values(self):
        assert [bell_number(n) for n in range(8)] == [
            1, 1, 2, 5, 15, 52, 203, 877,
        ]

    @given(st.integers(0, 20))
    def test_row_sum(self, n: int):
        assert bell_number(n) == sum(stirling2(n, j) for j in range(n + 1))

    @given(st.integers(1, 18))
    def test_touchard_recurrence(self, n: int):
        """B(n+1) = sum_j C(n, j) B(j)."""
        assert bell_number(n) == sum(
            binomial(n - 1, j) * bell_number(j) for j in range(n)
        )
