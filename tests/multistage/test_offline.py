"""Tests for offline (batch) assignment routing."""

from __future__ import annotations

import pytest

from repro.core.corrected import min_middle_switches_corrected
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.multistage.offline import (
    minimal_rearrangeable_m,
    route_assignment,
)
from repro.switching.generators import AssignmentGenerator
from repro.switching.requests import (
    Endpoint,
    MulticastAssignment,
    MulticastConnection,
)


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestRouteAssignment:
    def test_empty_assignment(self):
        net = ThreeStageNetwork(2, 2, 3, 1, x=1)
        result = route_assignment(net, MulticastAssignment.empty())
        assert result.realizable is True
        assert result.routes == {}

    def test_simple_assignment(self):
        net = ThreeStageNetwork(2, 2, 3, 1, x=1)
        assignment = MulticastAssignment(
            [conn((0, 0), (0, 0), (2, 0)), conn((1, 0), (1, 0))]
        )
        result = route_assignment(net, assignment)
        assert result.realizable is True
        assert set(net.active_connections) == set(result.routes.values())

    def test_infeasible_assignment_detected(self):
        """m=1: two connections from the same input module cannot both
        cross the single middle on one wavelength."""
        net = ThreeStageNetwork(2, 2, 1, 1, x=1)
        assignment = MulticastAssignment(
            [conn((0, 0), (2, 0)), conn((1, 0), (3, 0))]
        )
        result = route_assignment(net, assignment)
        assert result.realizable is False
        assert net.active_connections == {}  # restored to idle

    def test_requires_idle_network(self):
        net = ThreeStageNetwork(2, 2, 3, 1, x=1)
        net.connect(conn((0, 0), (2, 0)))
        with pytest.raises(ValueError, match="idle"):
            route_assignment(net, MulticastAssignment.empty())

    def test_budget_exhaustion(self):
        net = ThreeStageNetwork(2, 3, 5, 2, model=MulticastModel.MAW, x=1)
        generator = AssignmentGenerator(MulticastModel.MAW, 6, 2, rng=0)
        assignment = generator.random_full_assignment()
        result = route_assignment(net, assignment, node_budget=1)
        assert result.realizable is None
        assert net.active_connections == {}

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_assignments_realizable_at_corrected_bound(self, seed):
        """Offline realizability is implied by strict-sense nonblocking:
        at the corrected bound every assignment must route."""
        n, r, k = 2, 3, 2
        model = MulticastModel.MAW
        m = min_middle_switches_corrected(
            n, r, k, Construction.MSW_DOMINANT, model, x=1
        )
        generator = AssignmentGenerator(model, n * r, k, rng=seed)
        for _ in range(5):
            net = ThreeStageNetwork(n, r, m, k, model=model, x=1)
            assignment = generator.random_assignment(0.3)
            result = route_assignment(net, assignment)
            assert result.realizable is True

    def test_backtracking_beats_greedy_order(self):
        """An assignment the incremental router (in unlucky order) would
        fail is still realized offline thanks to backtracking."""
        # v(2,2,2,1): the exhaustive checker says m=2 is blockable online,
        # yet every *static* assignment may still fit -- backtracking gets
        # to re-choose routes.
        n, r, m, k = 2, 2, 2, 1
        net = ThreeStageNetwork(n, r, m, k, x=1)
        assignment = MulticastAssignment(
            [
                conn((0, 0), (0, 0), (2, 0)),
                conn((1, 0), (1, 0), (3, 0)),
            ]
        )
        result = route_assignment(net, assignment)
        assert result.realizable is True


class TestRearrangeableThreshold:
    def test_smallest_network(self):
        m_min, verdicts = minimal_rearrangeable_m(2, 2, 1, x=1, m_max=6)
        assert m_min == 3
        assert verdicts[2] is False

    def test_rearrangeable_never_exceeds_strict(self):
        """m_rearrangeable <= m_strict(exact) on the decided case."""
        from repro.multistage.exhaustive import exact_minimal_m

        rearrangeable, _ = minimal_rearrangeable_m(2, 2, 1, x=1, m_max=6)
        strict = exact_minimal_m(2, 2, 1, x=1, m_max=6).m_exact
        assert rearrangeable <= strict
