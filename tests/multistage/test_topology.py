"""Tests for the three-stage topology arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.multistage.topology import ThreeStageTopology


class TestValidation:
    def test_bad_parameters_rejected(self):
        for bad in [(0, 2, 2, 1), (2, 0, 2, 1), (2, 2, 0, 1), (2, 2, 2, 0)]:
            with pytest.raises(ValueError):
                ThreeStageTopology(*bad)


class TestPortArithmetic:
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 10), st.integers(1, 4))
    def test_module_of_port_consistent(self, n, r, m, k):
        topo = ThreeStageTopology(n, r, m, k)
        for port in range(topo.n_ports):
            module = topo.input_module_of(port)
            assert port in topo.ports_of_module(module)
            assert topo.local_port(port) == port - module * n
            assert topo.output_module_of(port) == module

    def test_out_of_range_rejected(self):
        topo = ThreeStageTopology(2, 3, 4, 1)
        with pytest.raises(ValueError):
            topo.input_module_of(6)
        with pytest.raises(ValueError):
            topo.ports_of_module(3)

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 10), st.integers(1, 4))
    def test_link_inventory(self, n, r, m, k):
        topo = ThreeStageTopology(n, r, m, k)
        assert topo.first_stage_links == r * m
        assert topo.second_stage_links == m * r
        assert topo.internal_wavelength_channels == 2 * r * m * k

    def test_describe(self):
        text = ThreeStageTopology(2, 3, 5, 4).describe()
        assert "v(n=2, r=3, m=5, k=4)" in text
        assert "6x6" in text
