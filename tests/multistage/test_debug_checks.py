"""Tests for the opt-in per-event invariant checks (debug_checks)."""

from __future__ import annotations

import pytest

from repro.multistage.network import DEBUG_CHECKS_ENV, ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection


REQUEST = MulticastConnection(Endpoint(0, 0), (Endpoint(0, 0),))


class TestFlagResolution:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(DEBUG_CHECKS_ENV, raising=False)
        assert ThreeStageNetwork(2, 2, 3, 1).debug_checks is False

    def test_kwarg_enables(self):
        assert ThreeStageNetwork(2, 2, 3, 1, debug_checks=True).debug_checks

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_env_var_enables(self, monkeypatch, value):
        monkeypatch.setenv(DEBUG_CHECKS_ENV, value)
        assert ThreeStageNetwork(2, 2, 3, 1).debug_checks is True

    @pytest.mark.parametrize("value", ["", "0", "false", "off"])
    def test_env_var_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(DEBUG_CHECKS_ENV, value)
        assert ThreeStageNetwork(2, 2, 3, 1).debug_checks is False

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv(DEBUG_CHECKS_ENV, "1")
        assert ThreeStageNetwork(2, 2, 3, 1, debug_checks=False).debug_checks is False


class TestCheckingBehaviour:
    def test_clean_traffic_passes_with_checks_on(self):
        net = ThreeStageNetwork(2, 2, 3, 1, debug_checks=True)
        cid = net.connect(REQUEST)
        net.disconnect(cid)
        assert net.setups == net.teardowns == 1

    def test_connect_catches_injected_corruption(self):
        net = ThreeStageNetwork(2, 2, 3, 1, debug_checks=True)
        # Leak a first-stage channel no connection owns.
        net._in_mid[1, 2, 0] = True
        with pytest.raises(AssertionError, match="link state"):
            net.connect(REQUEST)

    def test_disconnect_catches_injected_corruption(self):
        net = ThreeStageNetwork(2, 2, 3, 1, debug_checks=True)
        cid = net.connect(REQUEST)
        net._output_used[3, 0] = True
        with pytest.raises(AssertionError):
            net.disconnect(cid)

    def test_corruption_ignored_with_checks_off(self):
        """The hot path must not pay for the scan -- no check, no raise."""
        net = ThreeStageNetwork(2, 2, 3, 1, debug_checks=False)
        net._in_mid[1, 2, 0] = True
        net.connect(REQUEST)  # does not raise
        with pytest.raises(AssertionError):
            net.check_invariants()  # explicit calls always run
