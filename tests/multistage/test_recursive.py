"""Tests for the recursive multi-stage construction."""

from __future__ import annotations

import pytest

from repro.core.models import MulticastModel
from repro.core.multistage import optimal_design
from repro.multistage.recursive import (
    best_recursive_design,
    recursive_msw_crosspoints,
)


class TestRecursiveMSW:
    def test_small_networks_stay_crossbars(self):
        design = best_recursive_design(4, 2)
        assert design.structure == ("crossbar", 4)
        assert design.stages == 1
        assert design.crosspoints == 2 * 16

    @pytest.mark.parametrize("n_ports", [64, 256, 1024])
    def test_never_worse_than_crossbar(self, n_ports):
        assert recursive_msw_crosspoints(n_ports, 4) <= 4 * n_ports**2

    @pytest.mark.parametrize("n_ports", [256, 1024, 4096])
    def test_never_worse_than_flat_three_stage(self, n_ports):
        flat = optimal_design(n_ports, 4).cost.crosspoints
        assert recursive_msw_crosspoints(n_ports, 4) <= flat

    def test_odd_stage_counts(self):
        for n_ports in (16, 64, 256, 1024, 4096):
            design = best_recursive_design(n_ports, 2)
            assert design.stages % 2 == 1

    def test_deeper_recursion_kicks_in_eventually(self):
        """For large enough N the middle modules decompose (>= 5 stages)."""
        stage_counts = {
            n_ports: best_recursive_design(n_ports, 2).stages
            for n_ports in (2**10, 2**14, 2**16)
        }
        assert max(stage_counts.values()) >= 5

    def test_depth_cap_respected(self):
        shallow = best_recursive_design(2**14, 2, max_depth=1)
        assert shallow.stages <= 3

    def test_converters_zero_for_msw(self):
        assert best_recursive_design(256, 4).converters == 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            best_recursive_design(1, 2)
        with pytest.raises(ValueError):
            recursive_msw_crosspoints(4, 0)


class TestRecursiveWithOutputModels:
    @pytest.mark.parametrize(
        "model", [MulticastModel.MSDW, MulticastModel.MAW], ids=lambda m: m.value
    )
    def test_never_worse_than_crossbar(self, model):
        for n_ports in (64, 256, 1024):
            design = best_recursive_design(n_ports, 4, model)
            assert design.crosspoints <= 16 * n_ports**2

    def test_maw_converters_kn_when_clos(self):
        design = best_recursive_design(1024, 4, MulticastModel.MAW)
        if design.structure[0] == "clos":
            assert design.converters == 4 * 1024

    def test_msdw_converters_at_least_maw(self):
        msdw = best_recursive_design(1024, 4, MulticastModel.MSDW)
        maw = best_recursive_design(1024, 4, MulticastModel.MAW)
        assert msdw.converters >= maw.converters

    def test_describe_renders_tree(self):
        design = best_recursive_design(1024, 2)
        text = design.describe()
        assert "clos" in text or "crossbar" in text
