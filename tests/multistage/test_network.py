"""Tests for the three-stage network simulator."""

from __future__ import annotations

import pytest

from repro.combinatorics.multiset import DestinationMultiset
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection
from repro.switching.validity import ValidityError


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


def network(**overrides):
    defaults = dict(
        n=2,
        r=3,
        m=6,
        k=2,
        construction=Construction.MSW_DOMINANT,
        model=MulticastModel.MSW,
        x=1,
    )
    defaults.update(overrides)
    return ThreeStageNetwork(**defaults)


class TestConstruction:
    def test_default_x_is_most_permissive(self):
        net = ThreeStageNetwork(4, 5, 10, 2)
        assert net.x == 3  # min(n-1, r) = 3

    def test_bad_x_rejected(self):
        with pytest.raises(ValueError, match="x="):
            ThreeStageNetwork(2, 3, 6, 1, x=2)  # min(n-1, r) = 1

    def test_provable_nonblocking_flag(self):
        assert network(m=7).is_provably_nonblocking()  # bound: (1)(1+3)=4 -> m>4
        assert not network(m=4).is_provably_nonblocking()


class TestAdmission:
    def test_model_rule_checked(self):
        net = network(model=MulticastModel.MSW)
        with pytest.raises(ValidityError):
            net.connect(conn((0, 0), (1, 1)))

    def test_busy_input_endpoint_rejected(self):
        net = network()
        net.connect(conn((0, 0), (1, 0)))
        with pytest.raises(ValidityError, match="input endpoint"):
            net.connect(conn((0, 0), (2, 0)))

    def test_busy_output_endpoint_rejected(self):
        net = network()
        net.connect(conn((0, 0), (1, 0)))
        with pytest.raises(ValidityError, match="output endpoint"):
            net.connect(conn((1, 0), (1, 0)))

    def test_out_of_range_endpoint_rejected(self):
        net = network()
        with pytest.raises(ValidityError):
            net.connect(conn((0, 0), (9, 0)))


class TestLifecycle:
    def test_connect_disconnect_roundtrip(self):
        net = network()
        cid = net.connect(conn((0, 0), (2, 0), (4, 0)))
        assert cid in net.active_connections
        net.check_invariants()
        net.disconnect(cid)
        assert net.active_connections == {}
        net.check_invariants()
        assert net.setups == 1 and net.teardowns == 1

    def test_endpoint_reusable_after_teardown(self):
        net = network()
        cid = net.connect(conn((0, 0), (1, 0)))
        net.disconnect(cid)
        net.connect(conn((0, 0), (1, 0)))

    def test_unknown_disconnect_rejected(self):
        with pytest.raises(KeyError):
            network().disconnect(42)

    def test_disconnect_all(self):
        net = network()
        net.connect(conn((0, 0), (1, 0)))
        net.connect(conn((1, 0), (2, 0)))
        net.disconnect_all()
        assert net.active_connections == {}
        assert net.link_utilization() == {
            "input_to_middle": 0.0,
            "middle_to_output": 0.0,
        }

    def test_try_connect_returns_none_when_blocked(self):
        net = network(m=1)
        net.connect(conn((1, 0), (2, 0)))
        # Port 0 shares input module 0 with port 1; the single middle's
        # first-stage fiber wavelength 0 is taken.
        assert net.try_connect(conn((0, 0), (4, 0))) is None
        assert net.blocks == 1


class TestRoutingState:
    def test_branches_recorded(self):
        net = network(x=1)
        cid = net.connect(conn((0, 0), (1, 0), (3, 0)))
        routed = net.active_connections[cid]
        assert len(routed.branches) == 1  # x=1: single middle switch
        [branch] = routed.branches
        assert branch.in_wavelength == 0
        assert sorted(p for p, _ in branch.deliveries) == [0, 1]

    def test_multi_branch_when_x_allows(self):
        net = ThreeStageNetwork(3, 3, 9, 1, x=2)
        # Saturate middle 0's fiber to output module 2 so a fanout-3
        # request must split across two middles.
        cid0 = net.connect(conn((3, 0), (6, 0)))
        [branch] = net.active_connections[cid0].branches
        j = branch.middle
        request = conn((0, 0), (1, 0), (4, 0), (7, 0))
        cid = net.connect(request)
        routed = net.active_connections[cid]
        assert 1 <= len(routed.branches) <= 2

    def test_available_middles_shrink(self):
        net = network(x=1)
        source = Endpoint(0, 0)
        before = net.available_middles(source)
        net.connect(conn((1, 0), (2, 0)))  # same module, same wavelength
        after = net.available_middles(source)
        assert len(after) == len(before) - 1

    def test_destination_set_tracking(self):
        net = network(x=1)
        cid = net.connect(conn((0, 0), (2, 0)))  # output module 1
        [branch] = net.active_connections[cid].branches
        assert net.destination_set(branch.middle, 0) == {1}
        assert net.destination_set(branch.middle, 1) == frozenset()

    def test_same_port_two_wavelengths_is_invalid_connection(self):
        """Section 2.1: one connection may not use two wavelengths at a port."""
        with pytest.raises(ValueError):
            conn((0, 0), (2, 0), (2, 1))

    def test_multiset_multiplicity(self):
        net = ThreeStageNetwork(
            2,
            2,
            4,
            2,
            construction=Construction.MAW_DOMINANT,
            model=MulticastModel.MAW,
            x=1,
        )
        a = net.connect(conn((0, 0), (2, 0)))
        b = net.connect(conn((1, 0), (3, 0)))
        multisets = [net.destination_multiset(j) for j in range(4)]
        total = sum(ms.total() for ms in multisets)
        assert total == 2
        assert all(isinstance(ms, DestinationMultiset) for ms in multisets)
        net.disconnect(a)
        net.disconnect(b)
        assert all(net.destination_multiset(j).total() == 0 for j in range(4))


class TestWavelengthDiscipline:
    def test_msw_dominant_pins_source_wavelength(self):
        net = network(model=MulticastModel.MAW, x=1)
        cid = net.connect(conn((0, 1), (2, 0)))
        [branch] = net.active_connections[cid].branches
        assert branch.in_wavelength == 1
        assert branch.deliveries[0][1] == 1  # middle is MSW: no conversion

    def test_maw_dominant_frees_internal_wavelengths(self):
        net = ThreeStageNetwork(
            2,
            3,
            6,
            2,
            construction=Construction.MAW_DOMINANT,
            model=MulticastModel.MAW,
            x=1,
        )
        # Fill wavelength 0 on the g0->m0 fiber, then a second connection
        # from module 0 can still use middle 0 via wavelength 1.
        first = net.connect(conn((0, 0), (2, 0)))
        [branch] = net.active_connections[first].branches
        second = net.connect(conn((1, 0), (4, 0)))
        [branch2] = net.active_connections[second].branches
        if branch2.middle == branch.middle:
            assert branch2.in_wavelength != branch.in_wavelength

    def test_maw_dominant_msw_model_pins_output_link(self):
        """Network model MSW: the fiber into the output module must carry
        the destination wavelength even under MAW-dominant construction."""
        net = ThreeStageNetwork(
            2,
            2,
            4,
            2,
            construction=Construction.MAW_DOMINANT,
            model=MulticastModel.MSW,
            x=1,
        )
        cid = net.connect(conn((0, 1), (2, 1)))
        [branch] = net.active_connections[cid].branches
        assert branch.deliveries[0][1] == 1


class TestStats:
    def test_link_utilization_moves(self):
        net = network()
        assert net.link_utilization()["input_to_middle"] == 0.0
        net.connect(conn((0, 0), (2, 0)))
        assert net.link_utilization()["input_to_middle"] > 0.0
        assert net.link_utilization()["middle_to_output"] > 0.0
