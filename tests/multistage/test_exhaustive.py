"""Tests for the exhaustive model checker (exact minimal nonblocking m)."""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import min_middle_switches_msw_dominant
from repro.multistage.exhaustive import exact_minimal_m, is_blockable


class TestSmallestNetwork:
    """v(2, 2, m, 1), x = 1: fully decidable in well under a second."""

    def test_exact_threshold_is_three(self):
        result = exact_minimal_m(2, 2, 1, x=1, m_max=6)
        assert result.m_exact == 3

    def test_paper_bound_has_one_unit_of_slack(self):
        """Theorem 1 demands m >= 4 here; the true threshold is 3."""
        exact = exact_minimal_m(2, 2, 1, x=1, m_max=6).m_exact
        paper = min_middle_switches_msw_dominant(2, 2, 1, x=1)
        assert exact == paper - 1

    def test_blockable_below_threshold(self):
        for m in (1, 2):
            result = is_blockable(2, 2, m, 1, x=1)
            assert result.blockable is True
            assert result.witness_request is not None

    def test_not_blockable_at_threshold(self):
        result = is_blockable(2, 2, 3, 1, x=1)
        assert result.blockable is False
        assert result.states_explored > 100

    def test_witness_replays_to_a_block(self):
        """The returned witness (with its adversarial routes) must block."""
        result = is_blockable(2, 2, 2, 1, x=1)
        assert result.blockable
        net = result.replay()
        assert net.blocks == 1

    def test_replay_requires_a_witness(self):
        result = is_blockable(2, 2, 3, 1, x=1)
        assert result.blockable is False
        with pytest.raises(ValueError, match="witness"):
            result.replay()


class TestBudget:
    def test_budget_exhaustion_reports_unknown(self):
        result = is_blockable(2, 3, 4, 1, x=1, state_budget=50)
        assert result.blockable is None
        assert result.states_explored >= 50

    def test_scan_stops_on_unknown(self):
        result = exact_minimal_m(2, 3, 1, x=1, m_max=6, state_budget=50)
        assert result.m_exact is None


class TestLargerSlices:
    def test_blockable_found_quickly_below_bound(self):
        """Even where full decision is out of reach, blocking witnesses
        at small m are cheap to find."""
        result = is_blockable(2, 3, 2, 1, x=1, state_budget=5000)
        assert result.blockable is True

    def test_maw_model_blockable_below_paper_bound(self):
        """Under the MAW model blocking states exist at small m and the
        checker finds them blind.  (At the paper bound itself the gap is
        demonstrated constructively -- see test_theorem1_gap.py; the
        blind search's state space is out of reach there.)"""
        result = is_blockable(
            2, 2, 2, 2,
            model=MulticastModel.MAW,
            construction=Construction.MSW_DOMINANT,
            x=1,
            state_budget=200_000,
        )
        assert result.blockable is True
        result.replay()
