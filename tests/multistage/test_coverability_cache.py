"""The incremental coverability cache must always mirror the numpy state.

``ThreeStageNetwork`` keeps bitmask mirrors of link occupancy and
endpoint usage so the routing hot path never rebuilds them per request;
``check_invariants`` recomputes every mirror from the numpy ground
truth.  These tests drive the cache through every mutation path --
connect, disconnect, middle failure with drain, repair, disconnect_all
-- and cross-check after each step.
"""

from __future__ import annotations

import random

from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic


def _fuzz_network(model, construction, seed, steps=150):
    n, r, m, k = 3, 3, 5, 2
    net = ThreeStageNetwork(
        n, r, m, k, construction=construction, model=model, x=2
    )
    live = {}
    dropped = set()
    for event in dynamic_traffic(model, n * r, k, steps=steps, seed=seed):
        if event.kind == "setup":
            cid = net.try_connect(event.connection)
            if cid is None:
                dropped.add(event.connection_id)
            else:
                live[event.connection_id] = cid
        else:
            if event.connection_id in dropped:
                dropped.discard(event.connection_id)
                continue
            net.disconnect(live.pop(event.connection_id))
        net.check_invariants()
    return net


class TestCacheThroughTraffic:
    def test_msw_dominant_roundtrip(self):
        net = _fuzz_network(
            MulticastModel.MSW, Construction.MSW_DOMINANT, seed=11
        )
        assert net.setups > 0 and net.teardowns > 0

    def test_maw_dominant_roundtrip(self):
        net = _fuzz_network(
            MulticastModel.MAW, Construction.MAW_DOMINANT, seed=12
        )
        assert net.setups > 0

    def test_disconnect_all_resets_cache(self):
        net = _fuzz_network(
            MulticastModel.MSW, Construction.MSW_DOMINANT, seed=13, steps=80
        )
        net.disconnect_all()
        net.check_invariants()
        assert net.active_connections == {}
        # Every middle is available again on every wavelength.
        for wavelength in range(net.topology.k):
            assert net.available_middles(_endpoint(0, wavelength)) == list(
                range(net.topology.m)
            )


def _endpoint(port, wavelength):
    from repro.switching.requests import Endpoint

    return Endpoint(port, wavelength)


class TestCacheThroughFailures:
    def test_fail_middle_with_drain_roundtrip(self):
        net = _fuzz_network(
            MulticastModel.MSW, Construction.MSW_DOMINANT, seed=14, steps=100
        )
        rng = random.Random(0)
        middle = rng.randrange(net.topology.m)
        drained = net.fail_middle(middle, drain=True)
        net.check_invariants()
        assert middle not in net.available_middles(_endpoint(0, 0))
        # Drained requests can be re-routed around the failure.
        for request in drained:
            net.connect(request)
            net.check_invariants()
        net.repair_middle(middle)
        net.check_invariants()
        assert middle in net.available_middles(_endpoint(0, 0))


class TestCacheServesReads:
    def test_destination_set_matches_mask(self):
        net = _fuzz_network(
            MulticastModel.MSW, Construction.MSW_DOMINANT, seed=15, steps=100
        )
        for middle in range(net.topology.m):
            for wavelength in range(net.topology.k):
                labels = net.destination_set(middle, wavelength)
                mask = net.destination_mask(middle, wavelength)
                assert sorted(labels) == [
                    p for p in range(net.topology.r) if mask >> p & 1
                ]

    def test_available_middles_excludes_busy_and_failed(self):
        net = ThreeStageNetwork(
            2, 2, 3, 1,
            construction=Construction.MSW_DOMINANT,
            model=MulticastModel.MSW,
            x=1,
        )
        source = _endpoint(0, 0)
        assert net.available_middles(source) == [0, 1, 2]
        net.fail_middle(1)
        assert net.available_middles(source) == [0, 2]
        from repro.switching.requests import MulticastConnection

        net.connect(MulticastConnection(source, [_endpoint(2, 0)]))
        net.check_invariants()
        # Middle 0 now carries wavelength 0 out of module 0: busy for a
        # same-wavelength source in that module.
        assert 0 not in net.available_middles(_endpoint(1, 0))
