"""Tests for the MAW-dominant wavelength-assignment policies."""

from __future__ import annotations

import pytest

from repro.core.corrected import CorrectedBound
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


def maw_dominant(policy, m=6, seed=0):
    return ThreeStageNetwork(
        2, 3, m, 3,
        construction=Construction.MAW_DOMINANT,
        model=MulticastModel.MAW,
        x=1,
        wavelength_policy=policy,
        selection_seed=seed,
    )


class TestPolicyMechanics:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="wavelength policy"):
            ThreeStageNetwork(2, 2, 4, 2, wavelength_policy="bogus")

    def test_first_fit_picks_lowest(self):
        net = maw_dominant("first_fit")
        cid = net.connect(conn((0, 1), (2, 1)))
        [branch] = net.active_connections[cid].branches
        assert branch.in_wavelength == 0

    def test_most_used_packs(self):
        net = maw_dominant("most_used")
        # Seed some usage on wavelength 2 via a forced route.
        a = net.connect(conn((0, 0), (2, 0)))
        [branch_a] = net.active_connections[a].branches
        # Next connection from the other module should prefer the
        # already-used wavelength on its own (fresh) fiber.
        b = net.connect(conn((2, 0), (4, 0)))
        [branch_b] = net.active_connections[b].branches
        assert branch_b.in_wavelength == branch_a.in_wavelength

    def test_least_used_spreads(self):
        net = maw_dominant("least_used")
        a = net.connect(conn((0, 0), (2, 0)))
        [branch_a] = net.active_connections[a].branches
        b = net.connect(conn((2, 0), (4, 0)))
        [branch_b] = net.active_connections[b].branches
        assert branch_b.in_wavelength != branch_a.in_wavelength

    def test_random_is_seeded(self):
        def run(seed):
            net = maw_dominant("random", seed=seed)
            cid = net.connect(conn((0, 0), (2, 0)))
            [branch] = net.active_connections[cid].branches
            return branch.in_wavelength

        assert run(3) == run(3)

    def test_wavelength_usage_accounting(self):
        net = maw_dominant("first_fit")
        assert net.wavelength_usage() == [0, 0, 0]
        net.connect(conn((0, 0), (2, 0)))
        usage = net.wavelength_usage()
        assert sum(usage) == 2  # one in-fiber channel + one out-fiber channel

    def test_msw_dominant_ignores_policy(self):
        net = ThreeStageNetwork(
            2, 3, 6, 2, x=1,
            model=MulticastModel.MAW,
            wavelength_policy="most_used",
        )
        cid = net.connect(conn((0, 1), (2, 0)))
        [branch] = net.active_connections[cid].branches
        assert branch.in_wavelength == 1  # pinned to the source wavelength


class TestGuaranteeHolds:
    @pytest.mark.parametrize("policy", ThreeStageNetwork.WAVELENGTH_POLICIES)
    def test_no_blocking_at_bound_under_every_policy(self, policy):
        n, r, k = 2, 3, 2
        model = MulticastModel.MAW
        bound = CorrectedBound.compute(
            n, r, k, Construction.MAW_DOMINANT, model
        )
        net = ThreeStageNetwork(
            n, r, bound.m_min, k,
            construction=Construction.MAW_DOMINANT,
            model=model,
            x=bound.best_x,
            wavelength_policy=policy,
        )
        live = {}
        for event in dynamic_traffic(model, n * r, k, steps=250, seed=6):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        assert net.blocks == 0
        net.check_invariants()
