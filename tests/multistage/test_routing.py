"""Tests for the Lemma 4 cover search."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.multistage.routing import CoverSearch, find_cover


def fs(*items):
    return frozenset(items)


class TestBasics:
    def test_empty_destinations_trivial(self):
        assert find_cover(set(), {0: fs(1)}, 1) == {}

    def test_single_switch_cover(self):
        cover = find_cover({0, 1}, {5: fs(0, 1, 2)}, 1)
        assert cover == {5: [0, 1]}

    def test_impossible_returns_none(self):
        assert find_cover({0, 1}, {1: fs(0)}, 1) is None
        assert find_cover({0}, {}, 3) is None

    def test_cap_respected(self):
        coverable = {j: fs(j) for j in range(4)}
        assert find_cover({0, 1, 2, 3}, coverable, 3) is None
        cover = find_cover({0, 1, 2, 3}, coverable, 4)
        assert cover is not None and len(cover) == 4

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            find_cover({0}, {0: fs(0)}, 0)


class TestExactFallback:
    def test_greedy_trap(self):
        """Greedy picks the big set and strands an element; exact must win.

        D = {a, b, c, d}; x = 2.
        switch 0 covers {a, b, c} (greedy's first pick),
        switch 1 covers {a, b},
        switch 2 covers {c, d}.
        Greedy: 0 then 2 -> covered; make it harder:
        switch 0 covers {a, b, c},
        switch 1 covers {d, a},
        switch 2 covers {d, b},
        After greedy picks 0, either 1 or 2 finishes. Construct a true trap:
        D = {a,b,c,d,e,f}, x=2,
        s0 = {a,b,c,d}  (largest; greedy takes it, leaving {e,f})
        s1 = {e,a,b}    (covers e but not f)
        s2 = {f,c,d}    (covers f but not e)
        s3 = {a,b,e}    ...
        s4 = {c,d,f,e}? would cover both - remove.
        With s1 covering {e} extra and s2 {f} extra, no single switch
        finishes after s0, but s1+s2... that's 3 switches. The exact pair
        is s_left = {a,b,c,e}, s_right = {d,f} ... build explicitly:
        """
        coverable = {
            0: fs("a", "b", "c", "d"),  # greedy bait
            1: fs("a", "b", "c", "e"),
            2: fs("d", "f"),
        }
        destinations = fs("a", "b", "c", "d", "e", "f")
        stats = CoverSearch()
        cover = find_cover(destinations, coverable, 2, stats=stats)
        assert cover is not None
        assert set(cover) == {1, 2}
        assert not stats.greedy_hit
        assert stats.exact_nodes > 0

    def test_greedy_hit_recorded(self):
        stats = CoverSearch()
        find_cover({0}, {3: fs(0)}, 1, stats=stats)
        assert stats.greedy_hit
        assert stats.cover == {3: [0]}


class TestCoverStructure:
    @given(
        st.integers(1, 5),  # destinations
        st.integers(1, 8),  # switches
        st.integers(1, 4),  # cap
        st.randoms(use_true_random=False),
    )
    def test_returned_cover_is_valid(self, n_dest, n_switch, cap, rng):
        destinations = frozenset(range(n_dest))
        coverable = {
            j: frozenset(
                p for p in range(n_dest) if rng.random() < 0.5
            )
            for j in range(n_switch)
        }
        coverable = {j: s for j, s in coverable.items() if s}
        cover = find_cover(destinations, coverable, cap)
        if cover is None:
            return
        assert len(cover) <= cap
        assigned = [p for ps in cover.values() for p in ps]
        assert sorted(assigned) == sorted(destinations)
        for j, ps in cover.items():
            assert set(ps) <= coverable[j]

    @given(
        st.integers(1, 4),
        st.integers(1, 6),
        st.randoms(use_true_random=False),
    )
    def test_none_only_when_truly_impossible(self, n_dest, n_switch, rng):
        """Exhaustively verify None answers for small instances."""
        from itertools import combinations

        destinations = frozenset(range(n_dest))
        coverable = {
            j: frozenset(p for p in range(n_dest) if rng.random() < 0.4)
            for j in range(n_switch)
        }
        cap = 2
        cover = find_cover(destinations, coverable, cap)
        feasible = any(
            destinations <= frozenset().union(*(coverable[j] for j in combo))
            for size in range(1, cap + 1)
            for combo in combinations(sorted(coverable), size)
        )
        assert (cover is not None) == feasible
