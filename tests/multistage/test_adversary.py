"""Tests for the adversarial blocking scenarios (incl. Fig. 10)."""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import min_middle_switches_msw_dominant
from repro.multistage.adversary import (
    fig10_scenario,
    minimal_blocking_scenario,
    search_blocking_state,
)
from repro.multistage.network import BlockedError


class TestFig10:
    def test_msw_dominant_blocks_maw_dominant_routes(self):
        """The paper's Fig. 10 claim, executed."""
        outcome = fig10_scenario()
        assert outcome.msw_dominant_blocked
        assert not outcome.maw_dominant_blocked

    def test_scenario_is_deterministic(self):
        assert fig10_scenario() == fig10_scenario()


class TestMinimalWitness:
    def test_witness_replays(self):
        witness = minimal_blocking_scenario()
        net = witness.replay()
        assert net.blocks >= 1
        # The network is far below Theorem 1's bound.
        bound = min_middle_switches_msw_dominant(witness.n, witness.r, witness.k)
        assert witness.m < bound

    def test_tampered_witness_detected(self):
        from dataclasses import replace

        witness = minimal_blocking_scenario()
        # With plenty of middles the 'blocked' request routes fine, so
        # replay must flag the stale witness.
        generous = replace(witness, m=8)
        with pytest.raises(AssertionError):
            generous.replay()


class TestAdversarySearch:
    def test_finds_blocking_well_below_bound(self):
        witness = None
        for seed in range(40):
            witness = search_blocking_state(
                3, 3, 3, 1, x=1, seed=seed, max_events=600
            )
            if witness:
                break
        assert witness is not None, "adversary should crack m=3 for n=r=3"
        net = witness.replay()
        assert net.blocks == 1

    def test_gives_up_at_the_bound(self):
        """At m >= Theorem 1's minimum the adversary must fail (quickly)."""
        m = min_middle_switches_msw_dominant(3, 3, 1, x=1)
        for seed in range(5):
            assert (
                search_blocking_state(3, 3, m, 1, x=1, seed=seed, max_events=400)
                is None
            )

    def test_deterministic_per_seed(self):
        a = search_blocking_state(3, 3, 3, 1, x=1, seed=1, max_events=400)
        b = search_blocking_state(3, 3, 3, 1, x=1, seed=1, max_events=400)
        assert a == b

    def test_witness_fields_consistent(self):
        witness = None
        for seed in range(40):
            witness = search_blocking_state(
                2, 2, 2, 2,
                model=MulticastModel.MAW,
                construction=Construction.MSW_DOMINANT,
                x=1,
                seed=seed,
                max_events=600,
            )
            if witness:
                break
        if witness is None:
            pytest.skip("no witness for this tiny MAW configuration")
        assert witness.model is MulticastModel.MAW
        assert witness.blocked_request not in witness.prior


class TestBlockedErrorPath:
    def test_blocked_error_message_mentions_cover(self):
        witness = minimal_blocking_scenario()
        net = witness.replay()
        net.disconnect_all()
        for request in witness.prior:
            net.connect(request)
        with pytest.raises(BlockedError, match="cover"):
            net.connect(witness.blocked_request)
