"""Tests for the pluggable middle-switch selection strategies."""

from __future__ import annotations

import pytest

from repro.core.corrected import CorrectedBound
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestConstruction:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="selection"):
            ThreeStageNetwork(2, 2, 4, 1, selection="bogus")

    @pytest.mark.parametrize("selection", ThreeStageNetwork.SELECTIONS)
    def test_all_strategies_accepted(self, selection):
        net = ThreeStageNetwork(2, 2, 4, 1, selection=selection)
        assert net.selection == selection


class TestStrategyBehaviour:
    def test_first_fit_prefers_low_indices(self):
        net = ThreeStageNetwork(2, 3, 6, 1, selection="first_fit", x=1)
        cid = net.connect(conn((0, 0), (2, 0)))
        assert net.active_connections[cid].middles_used == (0,)

    def test_least_loaded_spreads(self):
        net = ThreeStageNetwork(2, 3, 6, 1, selection="least_loaded", x=1)
        used = []
        for source_port, dest_port in [(0, 2), (2, 0), (4, 3)]:
            cid = net.connect(conn((source_port, 0), (dest_port, 0)))
            used.extend(net.active_connections[cid].middles_used)
        # Three connections from three different modules land on three
        # different middles under load balancing.
        assert len(set(used)) == 3

    def test_most_loaded_packs(self):
        net = ThreeStageNetwork(2, 3, 6, 2, selection="most_loaded", x=1)
        # Different source modules, different destination modules: a
        # packing strategy reuses the already-loaded middle when legal.
        a = net.connect(conn((0, 0), (2, 0)))
        b = net.connect(conn((2, 0), (4, 0)))
        middles_a = net.active_connections[a].middles_used
        middles_b = net.active_connections[b].middles_used
        assert middles_a == middles_b

    def test_random_is_seeded(self):
        def run(seed):
            net = ThreeStageNetwork(
                2, 3, 6, 1, selection="random", selection_seed=seed, x=1
            )
            cid = net.connect(conn((0, 0), (2, 0)))
            return net.active_connections[cid].middles_used

        assert run(7) == run(7)

    def test_middle_load_accounting(self):
        net = ThreeStageNetwork(2, 3, 6, 2, x=1)
        assert all(net.middle_load(j) == 0 for j in range(6))
        cid = net.connect(conn((0, 0), (2, 0), (4, 0)))
        [branch] = net.active_connections[cid].branches
        # one in-link channel + two out-link channels
        assert net.middle_load(branch.middle) == 3
        net.disconnect(cid)
        assert net.middle_load(branch.middle) == 0


class TestGuaranteeIsStrategyIndependent:
    @pytest.mark.parametrize("selection", ThreeStageNetwork.SELECTIONS)
    @pytest.mark.parametrize(
        "construction", list(Construction), ids=lambda c: c.value
    )
    def test_no_blocking_at_corrected_bound(self, selection, construction):
        n, r, k = 2, 3, 2
        model = MulticastModel.MAW
        bound = CorrectedBound.compute(n, r, k, construction, model)
        net = ThreeStageNetwork(
            n,
            r,
            bound.m_min,
            k,
            construction=construction,
            model=model,
            x=bound.best_x,
            selection=selection,
        )
        live = {}
        for event in dynamic_traffic(model, n * r, k, steps=200, seed=3):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        assert net.blocks == 0
        net.check_invariants()
