"""Tests for JSON serialization of artifacts."""

from __future__ import annotations

import json

import pytest

from repro.core.models import MulticastModel
from repro.core.multistage import optimal_design
from repro.multistage.adversary import minimal_blocking_scenario
from repro.multistage.serialization import (
    assignment_from_dict,
    assignment_to_dict,
    connection_from_dict,
    connection_to_dict,
    design_from_dict,
    design_to_dict,
    dumps,
    loads,
    witness_from_dict,
    witness_to_dict,
)
from repro.switching.generators import AssignmentGenerator
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestConnections:
    def test_roundtrip(self):
        original = conn((0, 1), (2, 0), (3, 1))
        assert connection_from_dict(connection_to_dict(original)) == original

    def test_assignment_roundtrip(self):
        generator = AssignmentGenerator(MulticastModel.MAW, 4, 2, rng=1)
        assignment = generator.random_assignment(0.3)
        assert assignment_from_dict(assignment_to_dict(assignment)) == assignment

    def test_payload_is_plain_json(self):
        payload = connection_to_dict(conn((0, 0), (1, 0)))
        json.dumps(payload)  # must not raise


class TestWitness:
    def test_roundtrip_and_replay(self):
        witness = minimal_blocking_scenario()
        restored = witness_from_dict(witness_to_dict(witness))
        assert restored == witness
        restored.replay()  # still a valid blocking witness

    def test_kind_tag_enforced(self):
        with pytest.raises(ValueError, match="witness"):
            witness_from_dict({"kind": "nonsense"})


class TestDesign:
    def test_roundtrip(self):
        design = optimal_design(64, 2, MulticastModel.MAW)
        restored = design_from_dict(design_to_dict(design))
        assert restored == design
        assert restored.cost.crosspoints == design.cost.crosspoints

    def test_tampered_cost_detected(self):
        payload = design_to_dict(optimal_design(64, 2))
        payload["crosspoints"] += 1
        with pytest.raises(ValueError, match="disagree"):
            design_from_dict(payload)


class TestTopLevel:
    def test_dumps_loads_dispatch(self):
        witness = minimal_blocking_scenario()
        assert loads(dumps(witness)) == witness
        design = optimal_design(16, 2)
        assert loads(dumps(design)) == design
        connection = conn((0, 0), (1, 0))
        assert loads(dumps(connection)) == connection

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            dumps(object())

    def test_unrecognized_payload_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            loads('{"kind": "mystery"}')
