"""The bitmask routing kernel must match the frozenset reference exactly.

Every test compares the two kernels on the same inputs: the bitmask
path is a performance optimisation, so any observable difference --
cover composition, tie-breaking, blocking behaviour -- is a bug.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.multistage.routing import (
    find_cover,
    find_cover_bits,
    find_cover_reference,
    get_routing_kernel,
    iter_bits,
    mask_of,
    routing_kernel,
    set_routing_kernel,
)
from repro.switching.generators import dynamic_traffic


class TestKernelSwitch:
    def test_default_is_bitmask(self):
        assert get_routing_kernel() == "bitmask"

    def test_context_manager_restores(self):
        with routing_kernel("reference"):
            assert get_routing_kernel() == "reference"
        assert get_routing_kernel() == "bitmask"

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with routing_kernel("reference"):
                raise RuntimeError("boom")
        assert get_routing_kernel() == "bitmask"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            set_routing_kernel("simd")


class TestMaskPrimitives:
    @given(st.sets(st.integers(min_value=0, max_value=200)))
    def test_mask_roundtrip(self, items):
        assert list(iter_bits(mask_of(items))) == sorted(items)

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert list(iter_bits(0)) == []


def _random_instance(rng: random.Random):
    labels = rng.randint(1, 12)
    destinations = frozenset(
        rng.sample(range(labels), rng.randint(1, labels))
    )
    coverable = {
        j: frozenset(p for p in range(labels) if rng.random() < 0.5)
        for j in range(rng.randint(0, 8))
    }
    max_switches = rng.randint(1, 4)
    return destinations, coverable, max_switches


class TestFindCoverEquivalence:
    def test_randomized_instances_match_reference(self):
        rng = random.Random(2024)
        for _ in range(300):
            destinations, coverable, max_switches = _random_instance(rng)
            with routing_kernel("reference"):
                expected = find_cover(destinations, coverable, max_switches)
            got = find_cover(destinations, coverable, max_switches)
            assert got == expected, (destinations, coverable, max_switches)

    def test_native_bits_match_reference(self):
        rng = random.Random(99)
        for _ in range(300):
            destinations, coverable, max_switches = _random_instance(rng)
            expected = find_cover_reference(destinations, coverable, max_switches)
            got = find_cover_bits(
                mask_of(destinations),
                {j: mask_of(s) for j, s in coverable.items()},
                max_switches,
            )
            if expected is None:
                assert got is None
            else:
                assert {j: list(iter_bits(bits)) for j, bits in got.items()} == expected

    def test_string_labels_still_work(self):
        destinations = frozenset(["a", "b", "c"])
        coverable = {0: frozenset(["a", "b"]), 1: frozenset(["c"])}
        cover = find_cover(destinations, coverable, 2)
        with routing_kernel("reference"):
            assert cover == find_cover(destinations, coverable, 2)


@settings(deadline=None, max_examples=15)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    m=st.integers(min_value=2, max_value=6),
    model=st.sampled_from(list(MulticastModel)),
    construction=st.sampled_from(list(Construction)),
)
def test_network_traffic_identical_under_both_kernels(seed, m, model, construction):
    """Same traffic, same network, both kernels: identical accept/block
    decisions and identical routed state."""
    n, r, k, x = 3, 3, 2, 2

    def run():
        net = ThreeStageNetwork(
            n, r, m, k, construction=construction, model=model, x=x
        )
        outcomes = []
        live = {}
        dropped = set()
        for event in dynamic_traffic(
            model, n * r, k, steps=120, seed=seed
        ):
            if event.kind == "setup":
                cid = net.try_connect(event.connection)
                if cid is None:
                    dropped.add(event.connection_id)
                else:
                    live[event.connection_id] = cid
                outcomes.append(cid)
            else:
                if event.connection_id in dropped:
                    dropped.discard(event.connection_id)
                    continue
                net.disconnect(live.pop(event.connection_id))
        branches = [
            (cid, routed.input_module, routed.branches)
            for cid, routed in sorted(net.active_connections.items())
        ]
        net.check_invariants()
        return outcomes, branches

    bits = run()
    with routing_kernel("reference"):
        reference = run()
    assert bits == reference
