"""End-to-end integration: state-level routing mirrored into real optics."""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import NonblockingBound, multistage_cost
from repro.multistage.fabric_backed import FabricBackedThreeStage
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestCostsMatchSection34:
    @pytest.mark.parametrize("n,r,m,k", [(2, 3, 5, 2), (3, 2, 4, 2), (2, 2, 3, 3)])
    def test_crosspoints_and_converters(self, construction, model, n, r, m, k):
        physical = FabricBackedThreeStage(
            n, r, m, k, construction=construction, model=model
        )
        cost = multistage_cost(n, r, m, k, construction, model)
        assert physical.crosspoint_count() == cost.crosspoints
        assert physical.converter_count() == cost.converters


class TestEndToEndDelivery:
    def test_single_multicast_photon_path(self, construction, model):
        n, r, k = 2, 3, 2
        bound = NonblockingBound.compute(n, r, k, construction)
        net = ThreeStageNetwork(
            n, r, bound.m_min, k, construction=construction, model=model,
            x=bound.best_x,
        )
        physical = FabricBackedThreeStage(
            n, r, bound.m_min, k, construction=construction, model=model
        )
        net.connect(conn((0, 0), (2, 0), (4, 0)))
        result = physical.realize(net.active_connections.values())
        assert len(result.active_terminals()) == 2

    @pytest.mark.parametrize("seed", [5, 17])
    def test_mirrored_random_traffic(self, construction, model, seed):
        """Every state the router reaches must be physically realizable."""
        n, r, k = 2, 3, 2
        bound = NonblockingBound.compute(n, r, k, construction)
        net = ThreeStageNetwork(
            n, r, bound.m_min, k, construction=construction, model=model,
            x=bound.best_x,
        )
        physical = FabricBackedThreeStage(
            n, r, bound.m_min, k, construction=construction, model=model
        )
        live = {}
        for event in dynamic_traffic(model, n * r, k, steps=40, seed=seed):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
            physical.realize(net.active_connections.values())

    def test_wrong_topology_flagged_by_construction(self):
        with pytest.raises(ValueError):
            FabricBackedThreeStage(0, 2, 2, 1)

    def test_cross_wavelength_multicast_maw(self):
        """A single source fans out to different wavelengths at different
        ports -- only possible end-to-end because converters exist."""
        n, r, k = 2, 2, 2
        net = ThreeStageNetwork(
            n, r, 5, k,
            construction=Construction.MSW_DOMINANT,
            model=MulticastModel.MAW,
            x=1,
        )
        physical = FabricBackedThreeStage(
            n, r, 5, k,
            construction=Construction.MSW_DOMINANT,
            model=MulticastModel.MAW,
        )
        net.connect(conn((0, 0), (1, 1), (2, 0), (3, 1)))
        result = physical.realize(net.active_connections.values())
        received = {
            name: signals for name, signals in result.active_terminals().items()
        }
        assert set(received) == {"port_out1", "port_out2", "port_out3"}
        assert received["port_out1"][0].wavelength == 1
        assert received["port_out2"][0].wavelength == 0
        # All three copies originate from the same transmitter.
        origins = {
            (s.source_port, s.source_wavelength)
            for signals in received.values()
            for s in signals
        }
        assert origins == {(0, 0)}
