"""Lemma 4's multiset form, checked against live simulator state.

The paper generalizes Lemma 4 to the MAW-dominant construction: a
request with destination (module) set ``D`` can be realized through
middle switches ``j_1..j_x`` iff the intersection of their destination
multisets, restricted to ``D``, is *null* (eqs. (2)-(5)).  These tests
drive a MAW-dominant network into random states and verify, for random
middle subsets, that the multiset predicate agrees exactly with
link-level coverability -- i.e. that the eq. (3)-(5) semantics
implemented in :mod:`repro.combinatorics.multiset` are the ones the
routing physics obeys.
"""

from __future__ import annotations

import random

from repro.combinatorics.multiset import DestinationMultiset
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic


def loaded_network(seed: int) -> ThreeStageNetwork:
    net = ThreeStageNetwork(
        3, 3, 8, 2,
        construction=Construction.MAW_DOMINANT,
        model=MulticastModel.MAW,
        x=2,
    )
    live = {}
    for event in dynamic_traffic(MulticastModel.MAW, 9, 2, steps=100, seed=seed):
        if event.kind == "setup":
            live[event.connection_id] = net.connect(event.connection)
        else:
            net.disconnect(live.pop(event.connection_id))
    return net


class TestMultisetMatchesLinkState:
    def test_multiplicities_equal_busy_wavelengths(self):
        net = loaded_network(seed=3)
        for j in range(net.topology.m):
            multiset = net.destination_multiset(j)
            for p in range(net.topology.r):
                assert multiset.multiplicity(p) == int(
                    net._mid_out[j, p].sum()
                )

    def test_saturation_equals_full_link(self):
        net = loaded_network(seed=4)
        for j in range(net.topology.m):
            multiset = net.destination_multiset(j)
            for p in multiset.saturated_elements():
                assert net._mid_out[j, p].all()
            for p in multiset.usable_elements():
                assert not net._mid_out[j, p].all()


class TestLemma4Predicate:
    def test_null_intersection_iff_jointly_coverable(self):
        """Eq. (3)-(5): restricted intersection null  <=>  every module of
        D reachable through at least one of the chosen middles."""
        rng = random.Random(0)
        for seed in range(6):
            net = loaded_network(seed=seed)
            r, m = net.topology.r, net.topology.m
            for _ in range(40):
                x = rng.randint(1, 3)
                middles = rng.sample(range(m), x)
                d_size = rng.randint(1, r)
                destinations = rng.sample(range(r), d_size)

                multisets = [
                    net.destination_multiset(j).restrict(destinations)
                    for j in middles
                ]
                null = DestinationMultiset.intersect_all(multisets).is_null()

                coverable = all(
                    any(
                        not net._mid_out[j, p].all()
                        for j in middles
                    )
                    for p in destinations
                )
                assert null == coverable, (
                    f"Lemma 4 multiset predicate disagreed with link state "
                    f"(seed={seed}, middles={middles}, D={destinations})"
                )

    def test_pairwise_intersection_models_joint_reach(self):
        """The paper's reading of eq. (3): the maximal connection through
        two middles equals the one through a switch with the min-multiset."""
        net = loaded_network(seed=9)
        for j in range(net.topology.m - 1):
            a = net.destination_multiset(j)
            b = net.destination_multiset(j + 1)
            joint = a.intersect(b)
            for p in range(net.topology.r):
                via_either = (
                    not net._mid_out[j, p].all()
                    or not net._mid_out[j + 1, p].all()
                )
                assert (p in joint.usable_elements()) == via_either
