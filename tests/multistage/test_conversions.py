"""Tests for the end-to-end wavelength-conversion accounting."""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestMSWDominant:
    def test_msw_model_never_converts(self):
        net = ThreeStageNetwork(2, 3, 6, 2, model=MulticastModel.MSW)
        live = {}
        for event in dynamic_traffic(MulticastModel.MSW, 6, 2, steps=120, seed=1):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        assert net.total_conversions() == 0

    def test_maw_model_converts_only_at_output(self):
        """MSW-dominant carries the source wavelength through stages 1-2,
        so every conversion happens in the output modules."""
        net = ThreeStageNetwork(2, 3, 6, 2, model=MulticastModel.MAW, x=1)
        cid = net.connect(conn((0, 0), (2, 1), (4, 0)))
        # One destination differs from the source wavelength.
        assert net.conversions_of(cid) == 1

    def test_unicast_same_wavelength_is_free(self):
        net = ThreeStageNetwork(2, 3, 6, 2, model=MulticastModel.MAW)
        cid = net.connect(conn((0, 1), (3, 1)))
        assert net.conversions_of(cid) == 0


class TestMAWDominant:
    def test_first_stage_conversions_counted(self):
        net = ThreeStageNetwork(
            2, 2, 4, 2,
            construction=Construction.MAW_DOMINANT,
            model=MulticastModel.MAW,
            x=1,
        )
        # Occupy wavelength 0 on module 0's fiber to every middle, then a
        # second connection from module 0 must convert to wavelength 1
        # somewhere on its first-stage fiber.
        first = net.connect(conn((0, 0), (2, 0)))
        second = net.connect(conn((1, 0), (3, 0)))
        [branch1] = net.active_connections[first].branches
        [branch2] = net.active_connections[second].branches
        total = net.conversions_of(first) + net.conversions_of(second)
        if branch1.middle == branch2.middle:
            assert total >= 1  # one of them had to shift carrier
        assert net.total_conversions() == total


class TestAggregate:
    @pytest.mark.parametrize(
        "construction", list(Construction), ids=lambda c: c.value
    )
    def test_total_matches_sum(self, construction):
        net = ThreeStageNetwork(
            2, 3, 6, 2, construction=construction, model=MulticastModel.MAW
        )
        live = {}
        for event in dynamic_traffic(MulticastModel.MAW, 6, 2, steps=80, seed=5):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        assert net.total_conversions() == sum(
            net.conversions_of(cid) for cid in net.active_connections
        )

    def test_conversions_nonnegative_and_bounded(self):
        """A connection converts at most once per branch at each of the
        three stages plus once per destination."""
        net = ThreeStageNetwork(
            2, 3, 6, 2,
            construction=Construction.MAW_DOMINANT,
            model=MulticastModel.MAW,
        )
        cid = net.connect(conn((0, 0), (2, 1), (4, 1), (1, 0)))
        routed = net.active_connections[cid]
        branches = len(routed.branches)
        deliveries = sum(len(b.deliveries) for b in routed.branches)
        fanout = routed.request.fanout
        conversions = net.conversions_of(cid)
        assert 0 <= conversions <= branches + deliveries + fanout
