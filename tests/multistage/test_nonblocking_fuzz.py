"""The central claim, fuzzed: networks sized by Theorems 1-2 never block.

For every small topology, construction and model, drive the simulator
with randomized dynamic multicast traffic at ``m`` equal to the
theorem's minimum.  Every setup must succeed; the link-state invariants
must hold after every event.
"""

from __future__ import annotations

import pytest

from repro.core.models import MulticastModel
from repro.core.multistage import NonblockingBound
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic
from tests.conftest import FUZZ_TOPOLOGIES


def drive(net: ThreeStageNetwork, model: MulticastModel, steps: int, seed: int):
    """Apply a dynamic traffic sequence; all setups must route."""
    n_ports = net.topology.n_ports
    live = {}
    for event in dynamic_traffic(model, n_ports, net.topology.k, steps=steps, seed=seed):
        if event.kind == "setup":
            live[event.connection_id] = net.connect(event.connection)
        else:
            net.disconnect(live.pop(event.connection_id))
    net.check_invariants()


class TestNonblockingAtTheBound:
    @pytest.mark.parametrize("n,r,k", FUZZ_TOPOLOGIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_no_blocking_at_corrected_m_min(self, construction, model, n, r, k, seed):
        """At the model-aware bound, nothing blocks -- provably."""
        from repro.core.corrected import CorrectedBound

        bound = CorrectedBound.compute(n, r, k, construction, model)
        net = ThreeStageNetwork(
            n,
            r,
            bound.m_min,
            k,
            construction=construction,
            model=model,
            x=bound.best_x,
        )
        assert net.is_provably_nonblocking()
        drive(net, model, steps=250, seed=seed)
        assert net.blocks == 0

    @pytest.mark.parametrize("n,r,k", FUZZ_TOPOLOGIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_no_blocking_at_paper_m_min(self, construction, model, n, r, k, seed):
        """At the paper's printed bound, random traffic never blocks either
        (the Theorem-1 gap only bites under adversarial middle choices --
        see test_theorem1_gap.py)."""
        bound = NonblockingBound.compute(n, r, k, construction)
        net = ThreeStageNetwork(
            n,
            r,
            bound.m_min,
            k,
            construction=construction,
            model=model,
            x=bound.best_x,
        )
        assert net.is_provably_nonblocking(corrected=False)
        drive(net, model, steps=250, seed=seed)
        assert net.blocks == 0

    @pytest.mark.parametrize("n,r,k", [(3, 3, 2), (2, 3, 2)])
    def test_no_blocking_at_every_legal_x(self, construction, model, n, r, k):
        """The theorem holds per-x, not only at the optimum."""
        bound = NonblockingBound.compute(n, r, k, construction)
        for x, m_min in bound.per_x:
            net = ThreeStageNetwork(
                n, r, m_min, k, construction=construction, model=model, x=x
            )
            drive(net, model, steps=150, seed=7)
            assert net.blocks == 0, f"blocked at x={x}, m={m_min}"

    @pytest.mark.parametrize("n,r,k", [(3, 3, 1), (2, 3, 2)])
    def test_no_blocking_above_the_bound(self, construction, model, n, r, k):
        bound = NonblockingBound.compute(n, r, k, construction)
        net = ThreeStageNetwork(
            n,
            r,
            bound.m_min + 3,
            k,
            construction=construction,
            model=model,
            x=bound.best_x,
        )
        drive(net, model, steps=200, seed=3)
        assert net.blocks == 0


class TestInvariantsUnderChurn:
    @pytest.mark.parametrize("n,r,k", [(2, 3, 2), (3, 2, 2)])
    def test_invariants_after_every_event(self, construction, model, n, r, k):
        bound = NonblockingBound.compute(n, r, k, construction)
        net = ThreeStageNetwork(
            n,
            r,
            bound.m_min,
            k,
            construction=construction,
            model=model,
            x=bound.best_x,
        )
        live = {}
        for event in dynamic_traffic(
            model, n * r, k, steps=120, seed=13
        ):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
            net.check_invariants()

    def test_full_drain_restores_idle(self, construction, model):
        n, r, k = 2, 3, 2
        bound = NonblockingBound.compute(n, r, k, construction)
        net = ThreeStageNetwork(
            n, r, bound.m_min, k, construction=construction, model=model
        )
        live = {}
        for event in dynamic_traffic(model, n * r, k, steps=100, seed=21):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        net.disconnect_all()
        utilization = net.link_utilization()
        assert utilization["input_to_middle"] == 0.0
        assert utilization["middle_to_output"] == 0.0
