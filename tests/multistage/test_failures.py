"""Tests for middle-switch failure injection and fault-tolerant sizing."""

from __future__ import annotations

import random

import pytest

from repro.core.corrected import CorrectedBound
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic
from repro.switching.requests import Endpoint, MulticastConnection


def conn(source, *destinations):
    return MulticastConnection(Endpoint(*source), [Endpoint(*d) for d in destinations])


class TestFailureMechanics:
    def test_failed_middle_not_used_for_new_routes(self):
        net = ThreeStageNetwork(2, 3, 6, 1, x=1)
        net.fail_middle(0)
        cid = net.connect(conn((0, 0), (2, 0)))
        assert 0 not in net.active_connections[cid].middles_used
        assert net.failed_middles == {0}

    def test_fail_busy_middle_requires_drain(self):
        net = ThreeStageNetwork(2, 3, 6, 1, x=1)
        cid = net.connect(conn((0, 0), (2, 0)))
        [middle] = net.active_connections[cid].middles_used
        with pytest.raises(ValueError, match="drain"):
            net.fail_middle(middle)

    def test_drain_returns_affected_requests(self):
        net = ThreeStageNetwork(2, 3, 6, 1, x=1)
        request = conn((0, 0), (2, 0))
        cid = net.connect(request)
        [middle] = net.active_connections[cid].middles_used
        drained = net.fail_middle(middle, drain=True)
        assert drained == [request]
        assert net.active_connections == {}
        # The drained request re-routes around the failure.
        new_cid = net.connect(request)
        assert middle not in net.active_connections[new_cid].middles_used

    def test_repair_restores_service(self):
        net = ThreeStageNetwork(2, 2, 1, 1, x=1)
        net.fail_middle(0)
        assert net.try_connect(conn((0, 0), (2, 0))) is None  # no fabric left
        net.repair_middle(0)
        assert net.try_connect(conn((0, 0), (2, 0))) is not None

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ThreeStageNetwork(2, 2, 3, 1).fail_middle(3)

    def test_forced_route_through_failed_rejected(self):
        net = ThreeStageNetwork(2, 3, 6, 1, x=1)
        net.fail_middle(2)
        with pytest.raises(ValueError, match="not available"):
            net.connect(conn((0, 0), (2, 0)), force_middles={2: [1]})

    def test_invariants_hold_through_fail_repair(self):
        net = ThreeStageNetwork(2, 3, 6, 2, x=1)
        net.connect(conn((0, 0), (2, 0)))
        net.fail_middle(5)
        net.check_invariants()
        net.repair_middle(5)
        net.check_invariants()


class TestFaultTolerantProvisioning:
    @pytest.mark.parametrize("failures", [1, 2])
    def test_bound_plus_f_tolerates_f_failures(self, construction, failures):
        """m = bound + f stays nonblocking with any f middles down."""
        n, r, k = 2, 3, 2
        model = MulticastModel.MAW
        bound = CorrectedBound.compute(n, r, k, construction, model)
        net = ThreeStageNetwork(
            n,
            r,
            bound.m_min + failures,
            k,
            construction=construction,
            model=model,
            x=bound.best_x,
        )
        rng = random.Random(9)
        failed = rng.sample(range(net.topology.m), failures)
        for middle in failed:
            net.fail_middle(middle)
        live = {}
        for event in dynamic_traffic(model, n * r, k, steps=250, seed=4):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        assert net.blocks == 0

    def test_failure_churn_with_rerouting(self):
        """Fail/repair churn mid-traffic: drained requests always re-route
        when the spare margin covers the failures."""
        n, r, k = 2, 3, 2
        model = MulticastModel.MAW
        bound = CorrectedBound.compute(
            n, r, k, Construction.MSW_DOMINANT, model
        )
        spare = 2
        net = ThreeStageNetwork(
            n, r, bound.m_min + spare, k, model=model, x=bound.best_x
        )
        rng = random.Random(31)
        live = {}
        for step, event in enumerate(
            dynamic_traffic(model, n * r, k, steps=300, seed=8)
        ):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
            if step % 25 == 10:
                if len(net.failed_middles) < spare:
                    victim = rng.randrange(net.topology.m)
                    if victim not in net.failed_middles:
                        for request in net.fail_middle(victim, drain=True):
                            replacement = net.connect(request)
                            # Re-attach the id bookkeeping.
                            for key, cid in list(live.items()):
                                if cid not in net.active_connections:
                                    live[key] = replacement
                                    break
                else:
                    net.repair_middle(min(net.failed_middles))
        assert net.blocks == 0
        net.check_invariants()
