"""Tests for the Theorem-1 gap demonstration (the reproduction's finding).

The paper's Theorem 1 reduces the MSW-dominant nonblocking analysis to
one wavelength.  For networks under the MSDW/MAW models with k > 1 that
reduction undercounts output-side interference; these tests pin the
executable counterexample and the corrected bound's sufficiency.
"""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.multistage.adversary import demonstrate_theorem1_gap
from repro.multistage.network import ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection


CONFIGS = [(2, 3, 2), (2, 4, 2), (3, 4, 2), (2, 3, 3)]


class TestGapDemonstration:
    @pytest.mark.parametrize("n,r,k", CONFIGS)
    @pytest.mark.parametrize(
        "model",
        [MulticastModel.MSDW, MulticastModel.MAW],
        ids=lambda m: m.value,
    )
    def test_blocks_at_paper_bound_routes_at_corrected(self, n, r, k, model):
        result = demonstrate_theorem1_gap(n, r, k, model)
        assert result.blocked_at_paper_bound, (
            "the adversarial state must block at the paper's Theorem-1 m_min"
        )
        assert result.routed_at_corrected_bound, (
            "the corrected model-aware bound must route the same attack"
        )
        assert result.m_corrected > result.m_paper

    def test_msw_model_not_applicable(self):
        """For the MSW model the paper's theorem is correct; the gap
        demonstration refuses to run."""
        with pytest.raises(ValueError, match="MSDW/MAW"):
            demonstrate_theorem1_gap(2, 3, 2, MulticastModel.MSW)

    def test_preconditions_enforced(self):
        with pytest.raises(ValueError):
            demonstrate_theorem1_gap(2, 3, 1)  # k must be >= 2
        with pytest.raises(ValueError):
            demonstrate_theorem1_gap(3, 3, 2)  # needs r >= n + 1


class TestForcedRouting:
    """The force_middles hook the demonstration relies on."""

    def net(self):
        return ThreeStageNetwork(
            2, 3, 5, 2,
            construction=Construction.MSW_DOMINANT,
            model=MulticastModel.MAW,
            x=1,
        )

    def test_forced_route_honoured(self):
        net = self.net()
        cid = net.connect(
            MulticastConnection(Endpoint(0, 0), [Endpoint(2, 0)]),
            force_middles={3: [1]},
        )
        [branch] = net.active_connections[cid].branches
        assert branch.middle == 3

    def test_forced_route_must_cover_request(self):
        net = self.net()
        with pytest.raises(ValueError, match="covers"):
            net.connect(
                MulticastConnection(Endpoint(0, 0), [Endpoint(2, 0), Endpoint(4, 0)]),
                force_middles={3: [1]},  # module 2 missing
            )

    def test_forced_route_respects_x(self):
        net = self.net()
        with pytest.raises(ValueError, match="x="):
            net.connect(
                MulticastConnection(Endpoint(0, 0), [Endpoint(2, 0), Endpoint(4, 0)]),
                force_middles={3: [1], 4: [2]},  # x = 1
            )

    def test_forced_route_checks_availability(self):
        net = self.net()
        net.connect(
            MulticastConnection(Endpoint(1, 0), [Endpoint(2, 0)]),
            force_middles={0: [1]},
        )
        # Middle 0's fiber from module 0 is busy on wavelength 0 now.
        with pytest.raises(ValueError, match="not available"):
            net.connect(
                MulticastConnection(Endpoint(0, 0), [Endpoint(3, 0)]),
                force_middles={0: [1]},
            )

    def test_forced_route_checks_reachability(self):
        net = self.net()
        net.connect(
            MulticastConnection(Endpoint(2, 0), [Endpoint(0, 0)]),
            force_middles={1: [0]},
        )
        # Middle 1 -> module 0 is busy on wavelength 0; a wavelength-0
        # MSW-path request through middle 1 to module 0 cannot be forced.
        # (The middle drops out of the coverable set entirely, so it is
        # reported as unavailable for this request.)
        with pytest.raises(ValueError, match="not available|cannot reach"):
            net.connect(
                MulticastConnection(Endpoint(4, 0), [Endpoint(1, 0)]),
                force_middles={1: [0]},
            )

    def test_forced_states_are_legal(self):
        """After forced routing, the usual invariants must still hold."""
        net = self.net()
        net.connect(
            MulticastConnection(Endpoint(1, 0), [Endpoint(2, 1)]),
            force_middles={0: [1]},
        )
        net.connect(
            MulticastConnection(Endpoint(2, 0), [Endpoint(0, 0)]),
            force_middles={1: [0]},
        )
        net.check_invariants()
        net.disconnect_all()
        net.check_invariants()
