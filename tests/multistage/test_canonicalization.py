"""Property tests for the symmetry-canonicalized exhaustive search.

The canonicalized search (transposition table keyed on
:meth:`ThreeStageNetwork.canonical_signature` plus the monotone victim
probe) must return verdicts identical to the uncanonicalized reference
search on every configuration -- it only collapses symmetric states, it
never changes what is reachable or blockable.
"""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.multistage.exhaustive import exact_minimal_m, is_blockable
from repro.multistage.network import ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection


def _unicast(src_port, src_w, dst_port, dst_w):
    return MulticastConnection(
        Endpoint(src_port, src_w), (Endpoint(dst_port, dst_w),)
    )


class TestCanonicalSignature:
    def test_invariant_under_middle_permutation(self):
        """The same connection routed via different middles: same class."""
        request = _unicast(0, 0, 0, 0)
        signatures = set()
        raw = set()
        for middle in range(3):
            net = ThreeStageNetwork(2, 2, 3, 1, x=1)
            net.connect(request, force_middles={middle: [0]})
            signatures.add(net.canonical_signature())
            raw.add(net.state_signature())
        assert len(signatures) == 1
        assert len(raw) == 3  # the raw signatures do distinguish them

    def test_distinguishes_genuinely_different_states(self):
        idle = ThreeStageNetwork(2, 2, 3, 1, x=1)
        busy = ThreeStageNetwork(2, 2, 3, 1, x=1)
        busy.connect(_unicast(0, 0, 0, 0), force_middles={0: [0]})
        assert idle.canonical_signature() != busy.canonical_signature()

    def test_failed_middles_never_trade_places_with_live_ones(self):
        """A failed-but-idle middle is not interchangeable with a free one."""
        failed0 = ThreeStageNetwork(2, 2, 3, 1, x=1)
        failed0.fail_middle(0)
        failed0.connect(_unicast(0, 0, 0, 0), force_middles={1: [0]})
        # Same traffic, but the *occupied* middle is the failed one.
        net2 = ThreeStageNetwork(2, 2, 3, 1, x=1)
        net2.connect(_unicast(0, 0, 0, 0), force_middles={1: [0]})
        net2.fail_middle(1, drain=True)
        assert failed0.canonical_signature() != net2.canonical_signature()

    def test_wavelength_relabeling_msw(self):
        """MSW k=2: the same pattern on wavelength 0 vs 1 is one class."""
        on_w0 = ThreeStageNetwork(2, 2, 2, 2, x=1)
        on_w0.connect(_unicast(0, 0, 2, 0), force_middles={0: [1]})
        on_w1 = ThreeStageNetwork(2, 2, 2, 2, x=1)
        on_w1.connect(_unicast(0, 1, 2, 1), force_middles={0: [1]})
        assert on_w0.canonical_signature(
            wavelength_symmetry=True
        ) == on_w1.canonical_signature(wavelength_symmetry=True)
        # Without the flag they stay distinct (the raw channels differ).
        assert on_w0.canonical_signature() != on_w1.canonical_signature()


BLOCKABLE_CASES = [
    dict(n=2, r=2, m=1, k=1, x=1),
    dict(n=2, r=2, m=2, k=1, x=1),
    dict(n=2, r=2, m=3, k=1, x=1),
    dict(n=2, r=2, m=4, k=1, x=1),
    dict(n=2, r=2, m=1, k=2, x=1),
    dict(n=2, r=2, m=2, k=1, x=1, unicast_only=True),
    dict(n=2, r=2, m=3, k=1, x=1, unicast_only=True),
    dict(n=2, r=3, m=2, k=1, x=1, unicast_only=True),
    dict(n=2, r=3, m=3, k=1, x=1, unicast_only=True),
    dict(n=2, r=2, m=2, k=1, x=1, model=MulticastModel.MSDW),
]


class TestVerdictEquivalence:
    @pytest.mark.parametrize("case", BLOCKABLE_CASES)
    def test_is_blockable_matches_reference(self, case):
        case = dict(case)
        n, r, m, k = case.pop("n"), case.pop("r"), case.pop("m"), case.pop("k")
        canonical = is_blockable(n, r, m, k, canonicalize=True, **case)
        reference = is_blockable(n, r, m, k, canonicalize=False, **case)
        assert canonical.blockable == reference.blockable
        # Canonicalization only merges states -- never visits more.
        assert canonical.states_explored <= reference.states_explored

    def test_canonical_witness_still_replays(self):
        result = is_blockable(2, 2, 2, 1, x=1, canonicalize=True)
        assert result.blockable is True
        net = result.replay()
        assert net.blocks == 1

    def test_exact_minimal_m_matches_reference(self):
        canonical = exact_minimal_m(2, 2, 1, x=1, m_max=6, canonicalize=True)
        reference = exact_minimal_m(2, 2, 1, x=1, m_max=6, canonicalize=False)
        assert canonical.m_exact == reference.m_exact == 3
        assert [p.blockable for p in canonical.per_m] == [
            p.blockable for p in reference.per_m
        ]

    def test_unicast_clos_threshold(self):
        """Canonicalized unicast search recovers the Clos 2n-1 threshold."""
        result = exact_minimal_m(
            2, 3, 1, x=1, m_max=5, unicast_only=True, canonicalize=True
        )
        assert result.m_exact == 3

    def test_maw_model_verdict_preserved(self):
        """Wavelength symmetry must stay off outside MSW: MAW verdicts agree."""
        canonical = is_blockable(
            2, 2, 2, 2,
            model=MulticastModel.MAW,
            construction=Construction.MSW_DOMINANT,
            x=1,
            state_budget=200_000,
            canonicalize=True,
        )
        assert canonical.blockable is True
        canonical.replay()


class TestParallelScan:
    def test_jobs_do_not_change_the_scan(self):
        serial = exact_minimal_m(2, 2, 1, x=1, m_max=6, jobs=1)
        parallel = exact_minimal_m(2, 2, 1, x=1, m_max=6, jobs=2)
        assert parallel.m_exact == serial.m_exact
        assert [p.m for p in parallel.per_m] == [p.m for p in serial.per_m]
        assert [p.blockable for p in parallel.per_m] == [
            p.blockable for p in serial.per_m
        ]
