"""Tests for multicast demands and batch generators."""

from __future__ import annotations

import pytest

from repro.scheduling.demands import Demand, random_demand_batch, video_fanout_batch


class TestDemand:
    def test_basic(self):
        demand = Demand(0, [1, 2, 3])
        assert demand.fanout == 3
        assert demand.destinations == frozenset({1, 2, 3})

    def test_validation(self):
        with pytest.raises(ValueError):
            Demand(-1, [0])
        with pytest.raises(ValueError):
            Demand(0, [])
        with pytest.raises(ValueError):
            Demand(0, [-2])

    def test_conflicts_shared_source(self):
        assert Demand(0, [1]).conflicts_with(Demand(0, [2]))

    def test_conflicts_shared_destination(self):
        assert Demand(0, [3]).conflicts_with(Demand(1, [3, 4]))

    def test_no_conflict(self):
        assert not Demand(0, [1]).conflicts_with(Demand(2, [3]))

    def test_conflict_symmetric(self):
        a, b = Demand(0, [1, 2]), Demand(3, [2])
        assert a.conflicts_with(b) == b.conflicts_with(a) is True


class TestGenerators:
    def test_random_batch_deterministic(self):
        assert random_demand_batch(8, 10, seed=3) == random_demand_batch(
            8, 10, seed=3
        )

    def test_random_batch_legal(self):
        for demand in random_demand_batch(8, 30, seed=1):
            assert 0 <= demand.source < 8
            assert demand.source not in demand.destinations
            assert all(0 <= d < 8 for d in demand.destinations)

    def test_max_fanout_respected(self):
        for demand in random_demand_batch(10, 20, seed=2, max_fanout=2):
            assert demand.fanout <= 2

    def test_video_batch_has_hot_sources(self):
        batch = video_fanout_batch(16, 12, seed=5)
        sources = {demand.source for demand in batch}
        assert len(sources) <= 4  # the server pool
        # Channel 0 is the most popular.
        assert batch[0].fanout >= batch[-1].fanout

    def test_generators_validate_sizes(self):
        with pytest.raises(ValueError):
            random_demand_batch(1, 5, seed=0)
        with pytest.raises(ValueError):
            video_fanout_batch(2, 5, seed=0)
