"""Tests for electronic vs WDM round scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.demands import Demand, random_demand_batch
from repro.scheduling.electronic import (
    conflict_graph,
    electronic_rounds,
    exact_chromatic_rounds,
)
from repro.scheduling.wdm import load_lower_bound, wdm_rounds


def schedule_is_valid_electronic(demands, schedule):
    for bucket in schedule:
        for i in range(len(bucket)):
            for j in range(i + 1, len(bucket)):
                if demands[bucket[i]].conflicts_with(demands[bucket[j]]):
                    return False
    scheduled = sorted(index for bucket in schedule for index in bucket)
    return scheduled == list(range(len(demands)))


def schedule_is_valid_wdm(demands, schedule, k):
    from collections import Counter

    for bucket in schedule:
        sources: Counter[int] = Counter()
        sinks: Counter[int] = Counter()
        for index in bucket:
            sources[demands[index].source] += 1
            for d in demands[index].destinations:
                sinks[d] += 1
        if sources and max(sources.values()) > k:
            return False
        if sinks and max(sinks.values()) > k:
            return False
    scheduled = sorted(index for bucket in schedule for index in bucket)
    return scheduled == list(range(len(demands)))


class TestElectronic:
    def test_empty_batch(self):
        assert electronic_rounds([]) == (0, [])

    def test_conflict_free_batch_one_round(self):
        demands = [Demand(0, [1]), Demand(2, [3]), Demand(4, [5])]
        rounds, schedule = electronic_rounds(demands)
        assert rounds == 1
        assert schedule_is_valid_electronic(demands, schedule)

    def test_overlapping_destinations_serialize(self):
        """Three channels with one common viewer: three rounds, k=1."""
        demands = [Demand(s, [9]) for s in range(3)]
        rounds, schedule = electronic_rounds(demands)
        assert rounds == 3
        assert schedule_is_valid_electronic(demands, schedule)

    @given(st.integers(0, 10**6))
    @settings(max_examples=25)
    def test_greedy_schedules_are_valid(self, seed):
        demands = random_demand_batch(8, 12, seed=seed)
        rounds, schedule = electronic_rounds(demands)
        assert schedule_is_valid_electronic(demands, schedule)
        assert rounds <= len(demands)

    @given(st.integers(0, 10**6))
    @settings(max_examples=10)
    def test_greedy_upper_bounds_exact(self, seed):
        demands = random_demand_batch(6, 9, seed=seed)
        greedy, _ = electronic_rounds(demands)
        exact = exact_chromatic_rounds(demands)
        assert exact is not None
        assert exact <= greedy

    def test_conflict_graph_shape(self):
        demands = [Demand(0, [1]), Demand(0, [2]), Demand(3, [4])]
        graph = conflict_graph(demands)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)


class TestWdm:
    def test_k1_matches_electronic_conflict_rule(self):
        """At k=1 the WDM packer faces the same per-node budgets."""
        demands = [Demand(s, [9]) for s in range(3)]
        rounds, schedule = wdm_rounds(demands, 1)
        assert rounds == 3
        assert schedule_is_valid_wdm(demands, schedule, 1)

    def test_k_equal_load_single_round(self):
        demands = [Demand(s, [9]) for s in range(3)]
        rounds, schedule = wdm_rounds(demands, 3)
        assert rounds == 1
        assert schedule_is_valid_wdm(demands, schedule, 3)

    @given(st.integers(0, 10**6), st.integers(1, 4))
    @settings(max_examples=25)
    def test_schedules_valid_and_meet_load_bound(self, seed, k):
        demands = random_demand_batch(8, 14, seed=seed)
        rounds, schedule = wdm_rounds(demands, k)
        assert schedule_is_valid_wdm(demands, schedule, k)
        assert rounds >= load_lower_bound(demands, k)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20)
    def test_more_wavelengths_never_hurt(self, seed):
        demands = random_demand_batch(8, 14, seed=seed)
        rounds = [wdm_rounds(demands, k)[0] for k in (1, 2, 4, 8)]
        assert rounds == sorted(rounds, reverse=True)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20)
    def test_wdm_never_worse_than_electronic(self, seed):
        """The paper's Section 1 claim, as an inequality."""
        demands = random_demand_batch(8, 12, seed=seed)
        electronic, _ = electronic_rounds(demands)
        for k in (1, 2, 4):
            assert wdm_rounds(demands, k)[0] <= electronic

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            wdm_rounds([Demand(0, [1])], 0)
        with pytest.raises(ValueError):
            load_lower_bound([Demand(0, [1])], 0)

    def test_empty_batch(self):
        assert wdm_rounds([], 3) == (0, [])
        assert load_lower_bound([], 3) == 0
