"""Word-boundary suite: multi-word planes at and across 62 bits.

The plane layout switches from one int64 word per mask to ``W =
ceil(bits / 62)`` words exactly past 62, so this file pins the three
backends to each other *at* the boundary (61, 62), just across it (63,
64) and well past it (100):

* three-way agreement -- python/numpy/fused replay the same compiled
  stream and must agree on counts, ``explain_block`` cause dicts *and*
  the end-state occupancy bitplanes (extracted backend-agnostically as
  Python ints);
* high-bit round-trips -- covers committed at middle/module/wavelength
  indices on both sides of the word seam, asserting identical views
  after every allocate and all-zero planes after the frees;
* ``W == 1`` byte-identity -- single-word numpy arrays keep the
  pre-multi-word layout bit for bit and *byte for byte* (same shapes,
  same dtype, no trailing word axis) for a golden replay.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core.models import Construction, MulticastModel
from repro.engine.backends import make_state
from repro.engine.fused import FUSED_ENV
from repro.engine.geometry import FabricGeometry
from repro.engine.planes import WORD_BITS, combine_words
from repro.engine.state import NumpyState, PythonState
from repro.core.multistage import valid_x_range
from repro.perf.batch import _replay, compile_stream

BOUNDARY = (61, 62, 63, 64, 100)
BACKENDS = ("python", "numpy", "numba")
STEPS = 50


@contextmanager
def fused_interpreted():
    """Force the fused backend's interpreted mode for a block.

    Plain ``os.environ`` juggling instead of monkeypatch because
    hypothesis forbids function-scoped fixtures under ``@given``.
    """
    previous = os.environ.get(FUSED_ENV)
    os.environ[FUSED_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[FUSED_ENV]
        else:
            os.environ[FUSED_ENV] = previous


def canonical_planes(state) -> list[dict]:
    """Per-replication occupancy bitplanes as nested Python ints.

    Backend-agnostic: numpy-family states (:class:`NumpyState` and the
    fused subclass) join their word rows back into ints and drop the
    padding rows above each replication's own ``m``; the python backend
    transposes its view-oriented nesting into the same
    ``[b][...]``-leading order.
    """
    geos = state.geometries
    if isinstance(state, NumpyState):

        def grab(name):
            arr = getattr(state, name)
            return (
                combine_words(arr).tolist() if state._multiword else arr.tolist()
            )

        out_busy = grab("_out_busy")
        if state.msw_dominant:
            in_busy = grab("_in_busy")
            return [
                {
                    "in_busy": in_busy[b],
                    "out_busy": out_busy[b][: geos[b].m],
                }
                for b in range(state.batch)
            ]
        in_wave = grab("_in_wave")
        in_full = grab("_in_full")
        out_wave = grab("_out_wave")
        out_full = grab("_out_full")
        return [
            {
                "in_wave": [row[: geos[b].m] for row in in_wave[b]],
                "in_full": in_full[b],
                "out_wave": out_wave[b][: geos[b].m],
                "out_full": out_full[b][: geos[b].m],
                "out_busy": out_busy[b][: geos[b].m],
            }
            for b in range(state.batch)
        ]
    assert isinstance(state, PythonState)
    k = len(state._out_busy)
    if state.msw_dominant:
        r = len(state._in_busy)
        return [
            {
                "in_busy": [
                    [state._in_busy[g][w][b] for w in range(k)]
                    for g in range(r)
                ],
                "out_busy": [
                    [state._out_busy[w][b][j] for w in range(k)]
                    for j in range(geos[b].m)
                ],
            }
            for b in range(state.batch)
        ]
    r = len(state._in_wave)
    return [
        {
            "in_wave": [
                [state._in_wave[g][b][j] for j in range(geos[b].m)]
                for g in range(r)
            ],
            "in_full": [state._in_full[g][b] for g in range(r)],
            "out_wave": [
                [state._out_wave[b][j][p] for p in range(r)]
                for j in range(geos[b].m)
            ],
            "out_full": [state._out_full[b][j] for j in range(geos[b].m)],
            "out_busy": [
                [state._out_busy[w][b][j] for w in range(k)]
                for j in range(geos[b].m)
            ],
        }
        for b in range(state.batch)
    ]


def replay_all_backends(n, r, k, x, m_values, seed, construction, model):
    """One stream through every backend: counts, causes, end planes."""
    ops = compile_stream(model, n, r, k, STEPS, seed, None, False, None)
    geos = tuple(
        FabricGeometry(
            n=n, r=r, k=k, m=m, construction=construction, model=model, x=x
        )
        for m in m_values
    )
    results = {}
    with fused_interpreted():
        for backend in BACKENDS:
            state = make_state(geos, backend)
            attempts, replications = _replay(ops, state, True, True)
            results[backend] = (
                attempts,
                [
                    (
                        rep.blocked,
                        rep.releases,
                        rep.kind_counts,
                        [repr(cause) for cause in rep.causes],
                    )
                    for rep in replications
                ],
                canonical_planes(state),
            )
    return results


class TestBoundaryAgreement:
    """python/numpy/fused three-way identity across the word seam."""

    @pytest.mark.parametrize("wide", BOUNDARY)
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_three_way_agreement(self, wide, data):
        family = data.draw(st.sampled_from(("m", "r", "k")), label="family")
        n = data.draw(st.integers(2, 3), label="n")
        r = wide if family == "r" else data.draw(st.integers(2, 4), label="r")
        k = wide if family == "k" else data.draw(st.integers(1, 3), label="k")
        m = wide if family == "m" else data.draw(st.integers(1, 5), label="m")
        x = data.draw(
            st.sampled_from(list(valid_x_range(n, r))[:3]), label="x"
        )
        seed = data.draw(st.integers(0, 10_000), label="seed")
        construction = data.draw(
            st.sampled_from(list(Construction)), label="construction"
        )
        model = data.draw(st.sampled_from(list(MulticastModel)), label="model")

        results = replay_all_backends(
            n, r, k, x, [m], seed, construction, model
        )
        assert results["python"] == results["numpy"] == results["numba"]

    def test_mixed_batch_straddles_the_seam(self):
        """One lockstep batch whose m column spans every boundary value."""
        n, r, k, x, seed = 3, 63, 2, 2, 7
        for construction in Construction:
            for model in MulticastModel:
                results = replay_all_backends(
                    n, r, k, x, list(BOUNDARY), seed, construction, model
                )
                assert (
                    results["python"] == results["numpy"] == results["numba"]
                )


class TestHighBitRoundTrip:
    """Covers committed on both sides of the word seam, then undone."""

    MIDDLES = (0, WORD_BITS - 1, WORD_BITS, WORD_BITS + 1, 99)
    DEST_BITS = (0, WORD_BITS - 1, WORD_BITS, 69)

    def states(self, construction, model):
        geo = FabricGeometry(
            n=3, r=70, k=63, m=100,
            construction=construction, model=model, x=2,
        )
        with fused_interpreted():
            return {
                backend: make_state((geo,), backend) for backend in BACKENDS
            }

    def views_of(self, state):
        return [
            state.setup_views(g, sw) for g in (0, 2) for sw in (0, 61, 62)
        ]

    @pytest.mark.parametrize("construction", list(Construction))
    @pytest.mark.parametrize("model", list(MulticastModel))
    def test_allocate_free_identical_planes(self, construction, model):
        dest = sum(1 << p for p in self.DEST_BITS)
        states = self.states(construction, model)
        branches = {backend: [] for backend in states}
        for j in self.MIDDLES:
            for backend, state in states.items():
                branches[backend].append(
                    state.allocate(0, 1, 62, {j: dest})
                )
            planes = {
                backend: canonical_planes(state)
                for backend, state in states.items()
            }
            views = {
                backend: self.views_of(state)
                for backend, state in states.items()
            }
            assert planes["python"] == planes["numpy"] == planes["numba"]
            assert views["python"] == views["numpy"] == views["numba"]
            assert branches["python"][-1] == branches["numpy"][-1]
            assert branches["python"][-1] == branches["numba"][-1]
        for backend, state in states.items():
            for done in reversed(branches[backend]):
                state.free(0, 1, 62, done)
        planes = {
            backend: canonical_planes(state)
            for backend, state in states.items()
        }
        assert planes["python"] == planes["numpy"] == planes["numba"]

        def all_zero(node):
            if isinstance(node, list):
                return all(all_zero(item) for item in node)
            return node == 0

        for per_b in planes["python"]:
            for plane in per_b.values():
                assert all_zero(plane)


class TestSingleWordLayout:
    """``W == 1`` numpy arrays keep the pre-multi-word layout, byte for byte."""

    GOLDEN_SEED = 2024

    def test_arrays_byte_identical_to_single_word_layout(self):
        n, r, k, x = 3, 3, 2, 1
        m_values = [1, 2, 3, 5, 8]
        m_max = max(m_values)
        batch = len(m_values)
        for construction in Construction:
            for model in MulticastModel:
                ops = compile_stream(
                    model, n, r, k, 400, self.GOLDEN_SEED, None, False, None
                )
                geos = tuple(
                    FabricGeometry(
                        n=n, r=r, k=k, m=m,
                        construction=construction, model=model, x=x,
                    )
                    for m in m_values
                )
                state = make_state(geos, "numpy")
                reference = make_state(geos, "python")
                _replay(ops, state, False, False)
                _replay(ops, reference, False, False)
                assert not state._multiword

                def expect(shape, fill):
                    arr = np.zeros(shape, dtype=np.int64)
                    fill(arr)
                    return arr

                def check(actual, expected):
                    assert actual.shape == expected.shape
                    assert actual.dtype == np.int64
                    assert actual.tobytes() == expected.tobytes()

                def fill_out_busy(arr):
                    for b in range(batch):
                        for j in range(m_values[b]):
                            for w in range(k):
                                arr[b, j, w] = reference._out_busy[w][b][j]

                check(
                    state._out_busy, expect((batch, m_max, k), fill_out_busy)
                )
                if state.msw_dominant:

                    def fill_in_busy(arr):
                        for b in range(batch):
                            for g in range(r):
                                for w in range(k):
                                    arr[b, g, w] = reference._in_busy[g][w][b]

                    check(
                        state._in_busy, expect((batch, r, k), fill_in_busy)
                    )
                    continue

                def fill_in_wave(arr):
                    for b in range(batch):
                        for g in range(r):
                            for j in range(m_values[b]):
                                arr[b, g, j] = reference._in_wave[g][b][j]

                def fill_in_full(arr):
                    for b in range(batch):
                        for g in range(r):
                            arr[b, g] = reference._in_full[g][b]

                def fill_out_wave(arr):
                    for b in range(batch):
                        for j in range(m_values[b]):
                            for p in range(r):
                                arr[b, j, p] = reference._out_wave[b][j][p]

                def fill_out_full(arr):
                    for b in range(batch):
                        for j in range(m_values[b]):
                            arr[b, j] = reference._out_full[b][j]

                check(state._in_wave, expect((batch, r, m_max), fill_in_wave))
                check(state._in_full, expect((batch, r), fill_in_full))
                check(
                    state._out_wave, expect((batch, m_max, r), fill_out_wave)
                )
                check(state._out_full, expect((batch, m_max), fill_out_full))
