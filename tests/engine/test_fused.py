"""The fused backend: mode gating, stream lowering, and bit-identity.

The deep three-way identity suites live in ``tests/perf/test_batch.py``;
this module covers the fused machinery itself -- availability logic,
the interpreted-mode hook, :func:`repro.perf.batch.lower_stream`, and
the invariant that a fused replay leaves the very same bitplanes a
per-event replay would.
"""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.engine import fused
from repro.engine.fused import FUSED_ENV, FusedState
from repro.engine.geometry import FabricGeometry
from repro.engine.state import NumpyState
from repro.perf.batch import _SETUP, _TEARDOWN, compile_stream, lower_stream

np = pytest.importorskip("numpy")


def geometries(m_values=(1, 2, 3), model=MulticastModel.MSW,
               construction=Construction.MSW_DOMINANT, n=3, r=3, k=2, x=1):
    return tuple(
        FabricGeometry(
            n=n, r=r, k=k, m=m, construction=construction, model=model, x=x
        )
        for m in m_values
    )


class TestModes:
    def test_interpreted_mode_forced_by_env(self, monkeypatch):
        monkeypatch.setenv(FUSED_ENV, "1")
        assert fused.fused_available()
        assert fused.missing_requirement() is None
        assert fused.fused_mode() in ("interpreted", "jit")
        if not fused.NUMBA_AVAILABLE:
            assert fused.fused_mode() == "interpreted"

    def test_env_zero_means_off(self, monkeypatch):
        monkeypatch.setenv(FUSED_ENV, "0")
        if fused.NUMBA_AVAILABLE:
            assert fused.fused_mode() == "jit"
        else:
            assert fused.fused_mode() == "unavailable"
            assert fused.missing_requirement() == "numba is not installed"

    def test_unset_without_numba_is_unavailable(self, monkeypatch):
        monkeypatch.delenv(FUSED_ENV, raising=False)
        if fused.NUMBA_AVAILABLE:
            assert fused.fused_mode() == "jit"
        else:
            assert not fused.fused_available()

    def test_kernel_picks_interpreted_under_env(self, monkeypatch):
        monkeypatch.setenv(FUSED_ENV, "1")
        assert fused._kernel() is fused._PY_KERNEL


class TestLowering:
    def test_slots_are_dense_and_shared(self):
        ops = [
            (_SETUP, 17, 0, 0, 0b011),
            (_SETUP, 99, 1, 1, 0b100),
            (_TEARDOWN, 17, 0, 0, 0),
            (_SETUP, 4, 2, 0, 0b001),
            (_TEARDOWN, 99, 1, 1, 0),
        ]
        low = lower_stream(ops)
        assert low.n_slots == 3
        assert low.n_setups == 3
        assert list(low.tag) == [1, 1, 0, 1, 0]
        # setup and teardown of one connection share a slot; slots are
        # dense in first-appearance order.
        assert list(low.slot) == [0, 1, 0, 2, 1]
        assert list(low.g) == [0, 1, 0, 2, 1]
        assert list(low.sw) == [0, 1, 0, 0, 1]
        assert list(low.dest) == [0b011, 0b100, 0, 0b001, 0]

    def test_empty_stream(self):
        low = lower_stream([])
        assert low.n_slots == 0
        assert low.n_setups == 0
        assert len(low.tag) == 0

    def test_compiled_stream_round_trip(self):
        ops = compile_stream(MulticastModel.MAW, 3, 3, 2, steps=120, seed=5)
        low = lower_stream(ops)
        assert len(low.tag) == len(ops)
        assert low.n_setups == sum(1 for op in ops if op[0] == _SETUP)
        assert low.n_slots == len({op[1] for op in ops})
        assert int(low.slot.max()) == low.n_slots - 1


@pytest.mark.parametrize("construction", list(Construction))
@pytest.mark.parametrize("model", list(MulticastModel))
class TestEndStateIdentity:
    def test_fused_replay_leaves_per_event_bitplanes(
        self, construction, model, monkeypatch
    ):
        """After a fused replay the SoA planes equal a per-event replay's.

        Stronger than count identity: every admit/release must have
        updated the same words to the same values, so a fused state
        could hand off mid-stream to the per-event protocol.
        """
        from repro.perf.batch import _replay

        monkeypatch.setenv(FUSED_ENV, "1")
        geos = geometries(model=model, construction=construction)
        ops = compile_stream(model, 3, 3, 2, steps=200, seed=1)

        reference = NumpyState(geos)
        ref_attempts, ref_reps = _replay(ops, reference, True, False)

        state = FusedState(geos)
        replay = state.replay_ops(lower_stream(ops), True, False)

        assert replay.attempts == ref_attempts
        assert replay.blocked == [rep.blocked for rep in ref_reps]
        assert replay.releases == [rep.releases for rep in ref_reps]
        assert replay.kind_counts == [rep.kind_counts for rep in ref_reps]
        assert np.array_equal(state._out_busy, reference._out_busy)
        if construction is Construction.MSW_DOMINANT:
            assert np.array_equal(state._in_busy, reference._in_busy)
        else:
            assert np.array_equal(state._in_wave, reference._in_wave)
            assert np.array_equal(state._in_full, reference._in_full)
            assert np.array_equal(state._out_wave, reference._out_wave)
            assert np.array_equal(state._out_full, reference._out_full)
