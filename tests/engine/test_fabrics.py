"""The fabric-model registry and the Clos-through-the-seam bit-identity.

Two families of guarantees live here:

1. **Registry semantics** -- the three built-in fabrics register, unknown
   names fail with the uniform listing error, geometry guards fire in
   the uniform style, and the AWG fabric rejects constructions its
   passive routers cannot realize.

2. **Bit-identity pins** -- the Clos path *through* the fabric seam must
   be indistinguishable from the pre-seam engine: golden cache-key
   digests, the golden adaptive stream key and round schedules, golden
   blocked counts, and the sha256 of the NumpyState bitplanes after a
   full replay are all hardcoded from the pre-seam code.  A change to
   any of these is a silent invalidation of every warm cache and golden
   value in the wild, which is exactly what the pins exist to catch.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.models import Construction, MulticastModel
from repro.engine.fabrics import (
    CLOS,
    FabricSpec,
    _REGISTRY,
    fabric_names,
    fabric_status,
    get_fabric,
    register_fabric,
)
from repro.engine.geometry import FabricGeometry
from repro.engine.kernel import ALL_BLOCK_KINDS, BLOCK_KINDS
from repro.perf.batch import replay_cell, simulate_batch

C = Construction.MSW_DOMINANT
MSW = MulticastModel.MSW


# -- registry ----------------------------------------------------------------


def test_builtin_fabrics_registered():
    assert fabric_names() == ["awg_clos", "clos", "crossbar"]
    assert get_fabric("clos") is CLOS
    assert set(fabric_status()) == {"awg_clos", "clos", "crossbar"}


def test_unknown_fabric_lists_registry():
    with pytest.raises(ValueError, match=r"unknown fabric 'mesh'; choose from: awg_clos, clos, crossbar"):
        get_fabric("mesh")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_fabric(CLOS)


def test_register_fabric_roundtrip():
    spec = FabricSpec(name="test_only", title="t", description="d")
    try:
        register_fabric(spec)
        assert get_fabric("test_only") is spec
        assert "test_only" in fabric_names()
    finally:
        del _REGISTRY["test_only"]


def test_tokens_anchor_clos():
    assert get_fabric("clos").token() is None
    assert get_fabric("crossbar").token() == "crossbar"
    assert get_fabric("awg_clos").token() == "awg_clos"


def test_block_kind_taxonomies():
    assert get_fabric("clos").block_kinds == BLOCK_KINDS
    assert get_fabric("crossbar").block_kinds == ()
    assert get_fabric("awg_clos").block_kinds == ALL_BLOCK_KINDS
    assert ALL_BLOCK_KINDS == BLOCK_KINDS + ("awg_no_path",)


# -- geometry guards ---------------------------------------------------------


def test_geometry_k_guard_fires_before_x():
    # Regression: k=0 used to die inside the x validation with a
    # confusing bound message; now the k guard fires first in the
    # uniform style.
    with pytest.raises(ValueError, match=r"k must be >= 1, got 0"):
        FabricGeometry(3, 3, 0, 4, construction=C, model=MSW, x=1)


def test_geometry_r_guard_fires_before_x():
    with pytest.raises(ValueError, match=r"r must be >= 1, got 0"):
        FabricGeometry(3, 0, 2, 4, construction=C, model=MSW, x=1)


def test_geometry_rejects_unknown_fabric():
    with pytest.raises(ValueError, match="unknown fabric"):
        FabricGeometry(3, 3, 2, 4, construction=C, model=MSW, x=1, fabric="mesh")


def test_awg_requires_msw_dominant():
    with pytest.raises(ValueError, match="MSW_DOMINANT"):
        FabricGeometry(
            3, 3, 2, 4,
            construction=Construction.MAW_DOMINANT,
            model=MulticastModel.MAW,
            x=1,
            fabric="awg_clos",
        )


# -- the AWG reach rule ------------------------------------------------------


def test_awg_reach_rule_matches_cyclic_router():
    spec = get_fabric("awg_clos")
    r, k = 6, 3
    for j in range(8):
        for sw in range(k):
            mask = spec.middle_block_mask(j, sw, r, k)
            for p in range(r):
                reachable = (j + p) % k == sw % k
                assert bool(mask & (1 << p)) == (not reachable)


def test_awg_k1_has_no_constraint():
    spec = get_fabric("awg_clos")
    for j in range(4):
        assert spec.middle_block_mask(j, 0, 5, 1) == 0
    assert spec.static_unreach(3, 5, 1) == [0]


def test_static_unreach_is_intersection_over_middles():
    spec = get_fabric("awg_clos")
    m, r, k = 2, 6, 3
    masks = spec.static_unreach(m, r, k)
    assert masks is not None and len(masks) == k
    for sw in range(k):
        expect = (1 << r) - 1
        for j in range(m):
            expect &= spec.middle_block_mask(j, sw, r, k)
        assert masks[sw] == expect
    # With m >= k middles every residue class is covered: no module is
    # statically unreachable.
    assert spec.static_unreach(k, r, k) == [0] * k


def test_clos_has_no_static_masks():
    assert CLOS.static_unreach(4, 3, 2) is None
    geometry = FabricGeometry(3, 3, 2, 4, construction=C, model=MSW, x=1)
    assert geometry.static_unreach_masks() is None


# -- Clos through the seam: golden bit-identity pins -------------------------

GOLDEN_TRAFFIC_KEY = (
    "eed7f67b3cf368fc5a800e9678cf72a6a640b36e38e22cc34a903fc2099b777b"
)
GOLDEN_ROUND_KEY = (
    "1b3fee45773ac47c55f4e79a8b2341427414298282bb1a6ffe2041836064bb7c"
)
GOLDEN_STREAM_KEY = (
    "n=3|r=3|k=2|construction=MSW_DOMINANT|model=MSW|x=1|steps=150"
    "|max_fanout=None|schedule=1"
)
GOLDEN_ROUND0 = [
    (1470859603279129836, False),
    (1470859603279129836, True),
    (4151857129280367473, False),
    (4151857129280367473, True),
]
GOLDEN_ROUND1 = [
    (505717019273683216, False),
    (505717019273683216, True),
    (3375351269565341532, False),
    (3375351269565341532, True),
]
GOLDEN_BLOCKED = {1: 85, 2: 39, 3: 9, 4: 1, 6: 0}
GOLDEN_IN_BUSY_SHA = (
    "4836c3a145fb6963904974798ffab31328827ef2fa6610e0f1a14142eae57a58"
)
GOLDEN_OUT_BUSY_SHA = (
    "d94a51312eb099993a4fa0fa54bc26ed4f5e9bb4b15103a216af96a5c43699b5"
)


def test_clos_cache_keys_unchanged(tmp_path):
    from repro.analysis.montecarlo import _traffic_key
    from repro.perf.cache import ResultCache

    cache = ResultCache(tmp_path / "cache")
    key = _traffic_key(cache, 3, 3, 4, 2, C, MSW, 1, 200, 0, None)
    assert key == GOLDEN_TRAFFIC_KEY
    # The explicit Clos spelling addresses the same entry; any other
    # fabric gets a disjoint address.
    assert _traffic_key(
        cache, 3, 3, 4, 2, C, MSW, 1, 200, 0, None, fabric="clos"
    ) == key
    assert _traffic_key(
        cache, 3, 3, 4, 2, C, MSW, 1, 200, 0, None, fabric="awg_clos"
    ) != key


def test_clos_round_keys_and_schedule_unchanged(tmp_path):
    from repro.perf.adaptive import PrecisionConfig, _round_key, round_specs, stream_key
    from repro.perf.cache import ResultCache

    precision = PrecisionConfig(half_width=0.01, min_rounds=2, max_rounds=64)
    cache = ResultCache(tmp_path / "cache")
    assert _round_key(
        cache, 3, 3, 4, 2, C, MSW, 1, 150, None, 0, precision
    ) == GOLDEN_ROUND_KEY
    key = stream_key(3, 3, 2, C, MSW, 1, 150, None)
    assert key == GOLDEN_STREAM_KEY
    assert stream_key(3, 3, 2, C, MSW, 1, 150, None, fabric="clos") == key
    assert [
        (s.seed, s.antithetic) for s in round_specs(key, 0, precision)
    ] == GOLDEN_ROUND0
    assert [
        (s.seed, s.antithetic) for s in round_specs(key, 1, precision)
    ] == GOLDEN_ROUND1
    # A non-Clos fabric's schedule is derived from a disjoint key.
    other = stream_key(3, 3, 2, C, MSW, 1, 150, None, fabric="awg_clos")
    assert other == key + "|fabric=awg_clos"


def test_clos_blocked_counts_unchanged():
    for m, blocked in GOLDEN_BLOCKED.items():
        cells = dict(
            simulate_batch(3, 3, 2, C, MSW, 1, 300, None, 0, (m,), "python")
        )
        assert cells[m] == (154, blocked)
    # The explicit seam spelling is the same program.
    explicit = simulate_batch(
        3, 3, 2, C, MSW, 1, 300, None, 0, tuple(GOLDEN_BLOCKED), "python",
        False, None, "clos",
    )
    assert dict(explicit) == {m: (154, b) for m, b in GOLDEN_BLOCKED.items()}


def test_clos_numpy_bitplanes_unchanged():
    np = pytest.importorskip("numpy", reason="bitplane pins read numpy planes")
    from repro.engine.state import NumpyState
    from repro.perf.batch import _replay, compile_stream

    ops = compile_stream(MSW, 3, 3, 2, 300, 0)
    geometries = tuple(
        FabricGeometry(3, 3, 2, m, construction=C, model=MSW, x=1)
        for m in (1, 2, 3, 4, 6)
    )
    state = NumpyState(geometries)
    attempts, replications = _replay(ops, state, False, False)
    assert attempts == 154
    assert [rep.blocked for rep in replications] == [85, 39, 9, 1, 0]
    planes = {
        name: value
        for name, value in vars(state).items()
        if isinstance(value, np.ndarray)
    }
    digest = {
        name: hashlib.sha256(value.tobytes()).hexdigest()
        for name, value in planes.items()
    }
    assert digest["_in_busy"] == GOLDEN_IN_BUSY_SHA
    assert digest["_out_busy"] == GOLDEN_OUT_BUSY_SHA


# -- the AWG fabric's behaviour ----------------------------------------------

AWG_BLOCKED = {1: 125, 2: 97, 3: 85, 4: 71, 6: 65}


def test_awg_blocks_more_than_clos():
    m_values = tuple(AWG_BLOCKED)
    awg = dict(
        simulate_batch(
            3, 3, 2, C, MSW, 1, 300, None, 0, m_values, "python",
            False, None, "awg_clos",
        )
    )
    for m, blocked in AWG_BLOCKED.items():
        assert awg[m] == (154, blocked)
        assert blocked >= GOLDEN_BLOCKED[m]


def test_awg_equals_clos_at_k1():
    from repro.engine.backends import available_backends

    m_values = (1, 2, 3, 4)
    backends = [b for b in ("python", "numpy") if b in available_backends()]
    for backend in backends:
        clos = simulate_batch(
            3, 3, 1, C, MSW, 1, 300, None, 0, m_values, backend,
        )
        awg = simulate_batch(
            3, 3, 1, C, MSW, 1, 300, None, 0, m_values, backend,
            False, None, "awg_clos",
        )
        assert awg == clos


def test_awg_no_path_cause_reported():
    outcome = replay_cell(
        3, 3, 1, 2,
        construction=C, model=MSW, x=1, steps=300, seed=0,
        backend="python", record_causes=True, fabric="awg_clos",
    )
    assert outcome.blocked == AWG_BLOCKED[1]
    structural = [c for c in outcome.causes if c["kind"] == "awg_no_path"]
    assert structural
    for cause in structural:
        assert cause["fabric"] == "awg_clos"
        assert cause["awg_unreachable_modules"]
        # Precedence: a structurally unreachable destination is never
        # misfiled as a cover failure.
        assert cause["kind"] in get_fabric("awg_clos").block_kinds


def test_awg_three_way_backend_agreement():
    import os

    pytest.importorskip("numpy", reason="numpy/numba backends under test")

    from repro.engine.fused import FUSED_ENV, NUMBA_AVAILABLE

    m_values = (1, 2, 3, 4, 6)
    forced = not NUMBA_AVAILABLE
    if forced:
        os.environ[FUSED_ENV] = "1"
    try:
        runs = {
            backend: simulate_batch(
                3, 3, 2, C, MSW, 1, 300, None, 0, m_values, backend,
                False, None, "awg_clos",
            )
            for backend in ("python", "numpy", "numba")
        }
    finally:
        if forced:
            del os.environ[FUSED_ENV]
    assert runs["python"] == runs["numpy"] == runs["numba"]


# -- the crossbar fast path --------------------------------------------------


def test_crossbar_blocks_nothing():
    from repro.engine.backends import available_backends

    for backend in (b for b in ("python", "numpy") if b in available_backends()):
        cells = simulate_batch(
            3, 3, 2, C, MSW, 1, 300, None, 0, (1, 2, 4), backend,
            False, None, "crossbar",
        )
        for m, (attempts, blocked) in cells:
            assert attempts == 154
            assert blocked == 0


def test_crossbar_cost_is_flat_in_m():
    spec = get_fabric("crossbar")
    costs = {spec.cost(3, 3, m, 2, C, MSW) for m in (1, 4, 16)}
    assert len(costs) == 1
    assert costs.pop() > 0
