"""Backend registry: plane-width capabilities, overrides, the plug-in seam."""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.engine.backends import (
    BACKEND_ENV,
    BACKENDS,
    NUMPY_WORD_BITS,
    available_backends,
    backend_status,
    make_state,
    plane_width,
    plane_width_error,
    register_backend,
    resolve_backend,
)
from repro.engine.fused import FUSED_ENV, FusedState
from repro.engine.geometry import FabricGeometry
from repro.engine.state import NumpyState, PythonState


def geometries(m_values=(2, 3), k=1):
    return tuple(
        FabricGeometry(
            n=2, r=2, k=k, m=m,
            construction=Construction.MSW_DOMINANT,
            model=MulticastModel.MSW,
            x=1,
        )
        for m in m_values
    )


class TestPlaneWidth:
    def test_named_constant(self):
        assert NUMPY_WORD_BITS == 62

    def test_plane_width_of_a_geometry(self):
        assert plane_width(4, 2, 1) == 1
        assert plane_width(NUMPY_WORD_BITS, 2, 1) == 1
        assert plane_width(NUMPY_WORD_BITS + 1, 2, 1) == 2
        assert plane_width(4, 200, 1) == 4

    def test_uniform_error_message(self):
        message = plane_width_error("numpy", 70, 2, 1, 1)
        assert "at most 1 int64 word(s)" in message
        assert "m=70, r=2, k=1" in message
        assert "2-word planes" in message

    def test_builtin_backends_accept_wide_planes(self):
        pytest.importorskip("numpy")
        wide = NUMPY_WORD_BITS + 1
        assert resolve_backend("numpy", m_max=wide, r=2, k=1) == "numpy"
        assert resolve_backend("numpy", m_max=4, r=wide, k=wide) == "numpy"

    def test_env_override_accepts_wide_planes(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        wide = NUMPY_WORD_BITS + 1
        assert resolve_backend("auto", m_max=wide, r=2, k=1) == "numpy"

    def test_numba_accepts_wide_planes(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv(FUSED_ENV, "1")
        wide = NUMPY_WORD_BITS + 1
        assert resolve_backend("numba", m_max=wide, r=2, k=1) == "numba"

    def test_width_capped_backend_rejected_when_too_wide(self):
        from repro.engine import backends as mod

        name = "test-narrow"
        register_backend(name, PythonState, max_plane_width=1)
        try:
            wide = NUMPY_WORD_BITS + 1
            with pytest.raises(ValueError) as err:
                resolve_backend(name, m_max=wide, r=2, k=1)
            assert str(err.value) == plane_width_error(name, wide, 2, 1, 1)
            assert resolve_backend(name, m_max=4, r=2, k=1) == name
        finally:
            del mod._SPECS[name]


class TestResolution:
    def test_auto_defaults_to_python_without_numba(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.delenv(FUSED_ENV, raising=False)
        if "numba" in available_backends():
            pytest.skip("numba installed: auto legitimately prefers it")
        assert resolve_backend("auto", m_max=4, r=2, k=1) == "python"

    def test_auto_prefers_numba_when_available(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setenv(FUSED_ENV, "1")
        assert resolve_backend("auto", m_max=4, r=2, k=1) == "numba"

    def test_auto_keeps_numba_on_wide_planes(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setenv(FUSED_ENV, "1")
        assert (
            resolve_backend("auto", m_max=NUMPY_WORD_BITS + 1, r=2, k=1)
            == "numba"
        )

    def test_env_override_honored(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend("auto", m_max=4, r=2, k=1) == "numpy"

    def test_env_override_beats_numba_preference(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        monkeypatch.setenv(FUSED_ENV, "1")
        assert resolve_backend("auto", m_max=4, r=2, k=1) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown batch backend"):
            resolve_backend("cuda", m_max=4, r=2, k=1)

    def test_unknown_error_lists_only_available_backends(self, monkeypatch):
        from repro.engine import backends as mod

        # With every optional backend unavailable, the suggestion list
        # must shrink to what a user could actually pick.
        monkeypatch.setitem(
            mod._SPECS, "numpy",
            mod.BackendSpec(factory=NumpyState, missing=lambda: "not here"),
        )
        monkeypatch.setitem(
            mod._SPECS, "numba",
            mod.BackendSpec(factory=FusedState, missing=lambda: "not here"),
        )
        with pytest.raises(ValueError) as err:
            resolve_backend("cuda", m_max=4, r=2, k=1)
        assert "('auto', 'python')" in str(err.value)
        assert "numpy" not in str(err.value)

    def test_unknown_error_lists_per_backend_max_widths(self):
        from repro.engine import backends as mod

        name = "test-capped"
        register_backend(name, PythonState, max_plane_width=2)
        try:
            with pytest.raises(ValueError) as err:
                resolve_backend("cuda", m_max=4, r=2, k=1)
            message = str(err.value)
            assert "max plane widths:" in message
            assert "python=any" in message
            assert f"{name}=2 words" in message
        finally:
            del mod._SPECS[name]

    def test_missing_backend_requested_explicitly(self, monkeypatch):
        from repro.engine import backends as mod

        monkeypatch.setitem(
            mod._SPECS, "numba",
            mod.BackendSpec(
                factory=FusedState, missing=lambda: "numba is not installed"
            ),
        )
        with pytest.raises(
            ValueError, match="'numba' requested but numba is not installed"
        ):
            resolve_backend("numba", m_max=4, r=2, k=1)

    def test_available_backends_cover_the_registry(self):
        available = available_backends()
        assert "python" in available
        assert set(available) <= {*BACKENDS}.union(available)


class TestStatus:
    def test_status_covers_all_builtins(self):
        status = backend_status()
        assert set(BACKENDS) <= set(status)
        assert status["python"] == "available (plane width: any)"

    def test_builtin_backends_report_unlimited_width(self):
        pytest.importorskip("numpy")
        status = backend_status()
        assert status["numpy"] == "available (plane width: any)"

    def test_width_capped_backend_reports_its_cap(self):
        from repro.engine import backends as mod

        name = "test-single-word"
        register_backend(name, PythonState, max_plane_width=1)
        try:
            assert backend_status()[name] == (
                "available (max plane width: 1 word)"
            )
        finally:
            del mod._SPECS[name]

    def test_unavailable_backend_reports_reason(self, monkeypatch):
        from repro.engine import backends as mod

        monkeypatch.setitem(
            mod._SPECS, "numba",
            mod.BackendSpec(
                factory=FusedState, missing=lambda: "numba is not installed"
            ),
        )
        assert backend_status()["numba"] == (
            "unavailable (numba is not installed)"
        )


class TestMakeState:
    def test_python_state(self):
        state = make_state(geometries(), backend="python")
        assert isinstance(state, PythonState)
        assert state.batch == 2

    def test_numpy_state(self):
        pytest.importorskip("numpy")
        state = make_state(geometries(), backend="numpy")
        assert isinstance(state, NumpyState)
        assert state.batch == 2

    def test_numpy_state_on_wide_planes(self):
        pytest.importorskip("numpy")
        state = make_state(
            geometries(m_values=(NUMPY_WORD_BITS + 8,)), backend="numpy"
        )
        assert isinstance(state, NumpyState)
        assert state.plane_layout.m_words == 2

    def test_empty_geometries_rejected(self):
        with pytest.raises(ValueError, match="at least one FabricGeometry"):
            make_state(())


class TestRegistry:
    def test_reserved_names_rejected(self):
        for name in ("auto", "python", "numpy", "numba"):
            with pytest.raises(ValueError, match="reserved"):
                register_backend(name, PythonState)

    def test_registered_backend_resolves_and_builds(self):
        from repro.engine import backends as mod

        name = "test-dummy"
        register_backend(name, PythonState)
        try:
            assert resolve_backend(name, m_max=4, r=2, k=1) == name
            state = make_state(geometries(), backend=name)
            assert isinstance(state, PythonState)
            assert name in available_backends()
        finally:
            del mod._SPECS[name]

    def test_registered_backend_with_missing_probe(self):
        from repro.engine import backends as mod

        name = "test-cuda"
        register_backend(name, PythonState, missing=lambda: "no GPU")
        try:
            assert name not in available_backends()
            assert backend_status()[name] == "unavailable (no GPU)"
            with pytest.raises(ValueError, match="requested but no GPU"):
                resolve_backend(name, m_max=4, r=2, k=1)
        finally:
            del mod._SPECS[name]

    def test_legacy_word_gated_flag_maps_to_width_one(self):
        from repro.engine import backends as mod

        name = "test-legacy"
        register_backend(name, PythonState, word_gated=True)
        try:
            assert mod._SPECS[name].max_plane_width == 1
            with pytest.raises(ValueError, match="at most 1 int64"):
                resolve_backend(name, m_max=NUMPY_WORD_BITS + 1, r=2, k=1)
        finally:
            del mod._SPECS[name]
