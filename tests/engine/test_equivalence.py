"""Cross-layer property: the engine agrees with the serial network.

This is the drift the ``repro.engine`` extraction exists to prevent:
the engine's state-level ``admit``/``classify_block`` must make the
same admission decisions *and* produce the same cause evidence
(labels plus raw masks) as ``ThreeStageNetwork``'s incremental caches,
for every model and both dominance variants, on randomized traffic.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import valid_x_range
from repro.engine.backends import available_backends, make_state
from repro.engine.geometry import FabricGeometry
from repro.engine.kernel import (
    AdmissionRequest,
    admit,
    classify_block,
    release,
)
from repro.multistage.network import ThreeStageNetwork
from repro.perf.batch import compile_stream
from repro.switching.generators import dynamic_traffic

STEPS = 120


@st.composite
def sizes(draw):
    n = draw(st.integers(2, 4))
    r = draw(st.integers(2, 4))
    k = draw(st.integers(1, 3))
    x = draw(st.integers(1, 3))
    assume(x in valid_x_range(n, r))
    m = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 10_000))
    return n, r, k, x, m, seed


def engine_trace(n, r, k, m, construction, model, x, seed, backend="python"):
    """Drive the compiled stream through the engine's state-level API."""
    state = make_state(
        [
            FabricGeometry(
                n=n, r=r, k=k, m=m,
                construction=construction, model=model, x=x,
            )
        ],
        backend=backend,
    )
    ops = compile_stream(model, n, r, k, STEPS, seed)
    live = {}
    dropped = set()
    blocked = []
    for tag, cid, g, sw, dest_mask in ops:
        if tag:
            req = AdmissionRequest(g, sw, dest_mask)
            conn = admit(state, req)
            if conn is None:
                blocked.append(classify_block(state, req))
                dropped.add(cid)
            else:
                live[cid] = conn
        else:
            if cid in dropped:
                dropped.discard(cid)
                continue
            release(state, live.pop(cid))
    return blocked


def network_trace(n, r, k, m, construction, model, x, seed):
    """The serial simulator's blocked-request causes, in stream order."""
    net = ThreeStageNetwork(
        n, r, m, k, construction=construction, model=model, x=x
    )
    rng = random.Random(seed)
    live = {}
    dropped = set()
    blocked = []
    for event in dynamic_traffic(model, n * r, k, steps=STEPS, seed=rng):
        if event.kind == "setup":
            cid = net.try_connect(event.connection)
            if cid is None:
                blocked.append(net.explain_block(event.connection))
                dropped.add(event.connection_id)
            else:
                live[event.connection_id] = cid
        else:
            if event.connection_id in dropped:
                dropped.discard(event.connection_id)
                continue
            net.disconnect(live.pop(event.connection_id))
    return blocked


@pytest.mark.parametrize("construction", list(Construction))
@pytest.mark.parametrize("model", list(MulticastModel))
class TestEngineMatchesNetwork:
    @settings(max_examples=10, deadline=None)
    @given(config=sizes())
    def test_classify_block_equals_explain_block(
        self, construction, model, config
    ):
        n, r, k, x, m, seed = config
        from_engine = engine_trace(
            n, r, k, m, construction, model, x, seed
        )
        from_network = network_trace(
            n, r, k, m, construction, model, x, seed
        )
        # Same requests block (bit-identical admission), and every
        # blocked request gets the same cause label and evidence masks.
        assert from_engine == from_network


@pytest.mark.skipif(
    "numpy" not in available_backends(), reason="numpy not installed"
)
class TestBackendsAgree:
    @settings(max_examples=8, deadline=None)
    @given(config=sizes())
    def test_numpy_state_matches_python_state(self, config):
        n, r, k, x, m, seed = config
        construction = Construction.MSW_DOMINANT
        model = MulticastModel.MAW
        python = engine_trace(
            n, r, k, m, construction, model, x, seed, backend="python"
        )
        numpy = engine_trace(
            n, r, k, m, construction, model, x, seed, backend="numpy"
        )
        assert python == numpy
