"""Unit tests for the mask-level admission kernels and the geometry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.models import Construction, MulticastModel
from repro.engine.cover import find_cover_bits, mask_of
from repro.engine.geometry import FabricGeometry
from repro.engine.kernel import (
    BLOCK_KINDS,
    block_cause,
    classify_kind,
    free_middles,
    probe_cover,
    reach_map,
)


def geometry(**overrides):
    base = dict(
        n=2, r=3, k=2, m=4,
        construction=Construction.MSW_DOMINANT,
        model=MulticastModel.MSW,
        x=1,
    )
    base.update(overrides)
    return FabricGeometry(**base)


class TestGeometry:
    def test_frozen_and_derived_properties(self):
        geo = geometry(m=5)
        assert geo.msw_dominant and geo.model_msw
        assert geo.all_middles_mask == (1 << 5) - 1
        assert geo.k_full == (1 << geo.k) - 1
        with pytest.raises(AttributeError):
            geo.m = 6

    def test_with_m_preserves_everything_else(self):
        geo = geometry(m=3)
        grown = geo.with_m(7)
        assert grown.m == 7
        assert (grown.n, grown.r, grown.k, grown.x) == (geo.n, geo.r, geo.k, geo.x)
        assert grown.construction is geo.construction
        assert grown.model is geo.model

    def test_rejects_illegal_x(self):
        with pytest.raises(ValueError, match="outside the legal range"):
            geometry(x=99)

    def test_rejects_nonpositive_m(self):
        with pytest.raises(ValueError, match="m must be >= 1, got 0"):
            geometry(m=0)

    def test_dominance_and_model_flags(self):
        geo = geometry(
            construction=Construction.MAW_DOMINANT, model=MulticastModel.MAW
        )
        assert not geo.msw_dominant and not geo.model_msw


class TestMaskKernels:
    def test_free_middles_excludes_blocked_and_failed(self):
        assert free_middles(0b1111, 0b0011) == 0b1100
        assert free_middles(0b1111, 0b0001, failed=0b1000) == 0b0110

    def test_reach_map_ascending_and_sparse(self):
        blockers = [0b11, 0b00, 0b01, 0b10]
        got = reach_map(0b1101, 0b11, blockers)
        assert got == {2: 0b10, 3: 0b01}
        assert list(got) == [2, 3]  # ascending middle index

    def test_probe_cover_shortcut_picks_lowest_full_middle(self):
        blockers = [0b01, 0b00, 0b00]
        cover, partial = probe_cover(0b111, 0b11, 1, blockers)
        assert cover == {1: 0b11}
        # the scan stopped at middle 1; only middle 0's partial reach
        # was accumulated before the short-circuit
        assert partial == {0: 0b10}

    def test_probe_cover_blocked_returns_complete_reach_map(self):
        blockers = [0b01, 0b10, 0b11, 0b11]
        cover, partial = probe_cover(0b1111, 0b11, 1, blockers)
        assert cover is None
        assert partial == reach_map(0b1111, 0b11, blockers)

    @given(
        m=st.integers(1, 6),
        x=st.integers(1, 3),
        dest_bits=st.sets(st.integers(0, 4), min_size=1),
        data=st.data(),
    )
    def test_probe_cover_equals_reach_map_plus_cover_search(
        self, m, x, dest_bits, data
    ):
        """The greedy full-reach shortcut never changes the chosen cover."""
        dest_mask = mask_of(dest_bits)
        blockers = [
            data.draw(st.integers(0, 31), label=f"blockers[{j}]")
            for j in range(m)
        ]
        available = data.draw(st.integers(0, (1 << m) - 1), label="available")
        cover, _ = probe_cover(available, dest_mask, x, blockers)
        full = reach_map(available, dest_mask, blockers)
        expected = find_cover_bits(dest_mask, full, x) if full else None
        assert cover == expected

    def test_classify_kind_all_four(self):
        assert classify_kind(0, {}, 0b1, True) == "saturated_wavelength"
        assert classify_kind(0, {}, 0b1, False) == "converter_exhaustion"
        assert classify_kind(0b1, {0: 0b01}, 0b11, True) == "full_middles"
        assert (
            classify_kind(0b11, {0: 0b01, 1: 0b10}, 0b11, True) == "no_cover"
        )
        assert set(BLOCK_KINDS) == {
            "saturated_wavelength",
            "converter_exhaustion",
            "full_middles",
            "no_cover",
        }

    def test_block_cause_matches_trace_schema(self):
        from repro.obs.trace import CAUSE_KINDS, CAUSE_SCHEMA

        cause = block_cause(
            x=2,
            input_module=1,
            source_wavelength=0,
            blocked_mask=0b0100,
            available=0b1011,
            coverable={0: 0b01, 1: 0b10},
            dest_mask=0b111,
            msw_dominant=True,
        )
        assert set(cause) == set(CAUSE_SCHEMA)
        for name, expected in CAUSE_SCHEMA.items():
            assert isinstance(cause[name], expected)
        assert cause["kind"] in CAUSE_KINDS
        assert cause["kind"] == "full_middles"
        assert cause["unreachable_modules"] == [2]
        assert cause["per_destination"] == [[0, 0b01], [1, 0b10], [2, 0]]

    def test_cause_kinds_are_the_engine_taxonomy(self):
        from repro.engine.kernel import ALL_BLOCK_KINDS
        from repro.obs.trace import CAUSE_KINDS

        # The trace schema accepts the full fabric-aware taxonomy: the
        # Clos kinds (a prefix, so Clos consumers are unchanged) plus
        # the structural kinds other fabrics can produce.
        assert CAUSE_KINDS == ALL_BLOCK_KINDS
        assert CAUSE_KINDS[: len(BLOCK_KINDS)] == BLOCK_KINDS
