"""Tests for the Graphviz DOT export."""

from __future__ import annotations

from repro.core.models import MulticastModel
from repro.fabric.dot import to_dot
from repro.fabric.wdm_crossbar import build_crossbar
from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection


class TestToDot:
    def test_contains_every_component(self):
        crossbar = build_crossbar(MulticastModel.MSW, 2, 1)
        dot = to_dot(crossbar.fabric)
        for component in crossbar.fabric.components():
            assert f'"{component.name}"' in dot

    def test_edge_labels_carry_ports(self):
        crossbar = build_crossbar(MulticastModel.MSW, 2, 1)
        dot = to_dot(crossbar.fabric)
        assert "->" in dot and "label=" in dot

    def test_enabled_gates_highlighted(self):
        crossbar = build_crossbar(MulticastModel.MSW, 2, 1)
        assignment = MulticastAssignment(
            [MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0)])]
        )
        crossbar.realize(assignment)
        dot = to_dot(crossbar.fabric)
        assert 'color="red"' in dot

    def test_valid_dot_syntax_basics(self):
        dot = to_dot(build_crossbar(MulticastModel.MAW, 2, 2).fabric)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_rankdir_option(self):
        dot = to_dot(
            build_crossbar(MulticastModel.MSW, 2, 1).fabric, rankdir="TB"
        )
        assert "rankdir=TB;" in dot
