"""Tests for the optical component transfer functions."""

from __future__ import annotations

import pytest

from repro.fabric.components import (
    Combiner,
    CombinerConflictError,
    Demux,
    FabricError,
    InputTerminal,
    Mux,
    MuxConflictError,
    OutputTerminal,
    SOAGate,
    Splitter,
    WavelengthConverter,
)
from repro.fabric.signal import OpticalSignal


def sig(port=0, source_w=0, w=None):
    return OpticalSignal(port, source_w, source_w if w is None else w)


class TestSignal:
    def test_transmit_defaults(self):
        signal = OpticalSignal.transmit(3, 1)
        assert signal.wavelength == 1
        assert signal.source_wavelength == 1
        assert signal.payload == "s3w1"

    def test_converted_to_preserves_origin(self):
        converted = sig(2, 1).converted_to(0)
        assert converted.wavelength == 0
        assert converted.source_wavelength == 1
        assert converted.same_origin(sig(2, 1))

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            OpticalSignal(-1, 0, 0)
        with pytest.raises(ValueError):
            OpticalSignal(0, -1, 0)
        with pytest.raises(ValueError):
            OpticalSignal(0, 0, -1)


class TestTerminals:
    def test_input_terminal_emits_injected(self):
        terminal = InputTerminal("in")
        terminal.inject([sig()])
        assert terminal.transfer([]) == [[sig()]]
        terminal.clear()
        assert terminal.transfer([]) == [[]]

    def test_output_terminal_records(self):
        terminal = OutputTerminal("out")
        terminal.transfer([[sig()]])
        assert terminal.received == [sig()]


class TestSplitter:
    def test_copies_to_all_outputs(self):
        splitter = Splitter("s", 3)
        outputs = splitter.transfer([[sig()]])
        assert len(outputs) == 3
        assert all(bundle == [sig()] for bundle in outputs)

    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            Splitter("s", 0)


class TestCombiner:
    def test_passes_single_active_input(self):
        combiner = Combiner("c", 3)
        assert combiner.transfer([[], [sig()], []]) == [[sig()]]

    def test_all_dark(self):
        assert Combiner("c", 2).transfer([[], []]) == [[]]

    def test_conflict_raises(self):
        combiner = Combiner("c", 2)
        with pytest.raises(CombinerConflictError):
            combiner.transfer([[sig(0)], [sig(1)]])

    def test_conflict_even_on_different_wavelengths(self):
        """The paper's combiner rule: one active input, period."""
        combiner = Combiner("c", 2)
        with pytest.raises(CombinerConflictError):
            combiner.transfer([[sig(0, 0)], [sig(1, 1)]])

    def test_fanin_validated(self):
        with pytest.raises(ValueError):
            Combiner("c", 0)


class TestSOAGate:
    def test_off_blocks(self):
        assert SOAGate("g").transfer([[sig()]]) == [[]]

    def test_on_passes(self):
        gate = SOAGate("g", enabled=True)
        assert gate.transfer([[sig()]]) == [[sig()]]


class TestConverter:
    def test_transparent_by_default(self):
        converter = WavelengthConverter("w")
        assert converter.transfer([[sig(w=1)]]) == [[sig(w=1)]]

    def test_converts_carrier(self):
        converter = WavelengthConverter("w", target_wavelength=2)
        [out] = converter.transfer([[sig(0, 1)]])
        assert out[0].wavelength == 2
        assert out[0].source_wavelength == 1

    def test_single_channel_only(self):
        converter = WavelengthConverter("w", 0)
        with pytest.raises(FabricError):
            converter.transfer([[sig(0, 0), sig(1, 1)]])


class TestDemux:
    def test_separates_by_carrier(self):
        demux = Demux("d", 3)
        outputs = demux.transfer([[sig(w=2), sig(0, 1, 0)]])
        assert outputs[0] == [sig(0, 1, 0)]
        assert outputs[1] == []
        assert outputs[2] == [sig(w=2)]

    def test_out_of_range_carrier_raises(self):
        demux = Demux("d", 2)
        with pytest.raises(FabricError):
            demux.transfer([[sig(w=5)]])

    def test_k_validated(self):
        with pytest.raises(ValueError):
            Demux("d", 0)


class TestMux:
    def test_merges_distinct_carriers(self):
        mux = Mux("m", 2)
        [merged] = mux.transfer([[sig(0, 0)], [sig(1, 1)]])
        assert len(merged) == 2

    def test_same_carrier_conflict(self):
        mux = Mux("m", 2)
        with pytest.raises(MuxConflictError):
            mux.transfer([[sig(0, 0)], [sig(1, 0)]])

    def test_k_validated(self):
        with pytest.raises(ValueError):
            Mux("m", 0)


class TestPortCountChecks:
    def test_wrong_bundle_count_raises(self):
        with pytest.raises(FabricError):
            Splitter("s", 2).transfer([[], []])
        with pytest.raises(FabricError):
            Combiner("c", 2).transfer([[]])
