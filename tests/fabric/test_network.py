"""Tests for the fabric graph and signal propagation."""

from __future__ import annotations

import pytest

from repro.fabric.components import (
    Combiner,
    FabricError,
    InputTerminal,
    OutputTerminal,
    SOAGate,
    Splitter,
    WavelengthConverter,
)
from repro.fabric.network import OpticalFabric
from repro.fabric.signal import OpticalSignal


def tiny_fabric():
    """in -> gate -> out."""
    fabric = OpticalFabric("tiny")
    source = fabric.add(InputTerminal("in"))
    gate = fabric.add(SOAGate("gate"))
    sink = fabric.add(OutputTerminal("out"))
    fabric.connect(source, 0, gate, 0)
    fabric.connect(gate, 0, sink, 0)
    return fabric, source, gate, sink


class TestWiring:
    def test_duplicate_name_rejected(self):
        fabric = OpticalFabric()
        fabric.add(SOAGate("g"))
        with pytest.raises(ValueError):
            fabric.add(SOAGate("g"))

    def test_bad_ports_rejected(self):
        fabric = OpticalFabric()
        a = fabric.add(SOAGate("a"))
        b = fabric.add(SOAGate("b"))
        with pytest.raises(ValueError):
            fabric.connect(a, 1, b, 0)
        with pytest.raises(ValueError):
            fabric.connect(a, 0, b, 1)

    def test_double_feed_rejected(self):
        fabric = OpticalFabric()
        a = fabric.add(SOAGate("a"))
        b = fabric.add(SOAGate("b"))
        c = fabric.add(SOAGate("c"))
        fabric.connect(a, 0, c, 0)
        with pytest.raises(ValueError):
            fabric.connect(b, 0, c, 0)

    def test_output_fanout_requires_splitter(self):
        fabric = OpticalFabric()
        a = fabric.add(SOAGate("a"))
        b = fabric.add(SOAGate("b"))
        c = fabric.add(SOAGate("c"))
        fabric.connect(a, 0, b, 0)
        with pytest.raises(ValueError, match="Splitter"):
            fabric.connect(a, 0, c, 0)

    def test_unconnected_input_detected(self):
        fabric = OpticalFabric()
        fabric.add(SOAGate("floating"))
        with pytest.raises(FabricError, match="unconnected"):
            fabric.check_wiring()

    def test_cycle_detected(self):
        fabric = OpticalFabric()
        a = fabric.add(SOAGate("a"))
        b = fabric.add(SOAGate("b"))
        fabric.connect(a, 0, b, 0)
        fabric.connect(b, 0, a, 0)
        with pytest.raises(FabricError, match="cycle"):
            fabric.propagate()


class TestPropagation:
    def test_gate_on_delivers(self):
        fabric, source, gate, sink = tiny_fabric()
        source.inject([OpticalSignal.transmit(0, 0)])
        gate.enabled = True
        result = fabric.propagate()
        assert result.at("out") == (OpticalSignal.transmit(0, 0),)

    def test_gate_off_blocks(self):
        fabric, source, gate, sink = tiny_fabric()
        source.inject([OpticalSignal.transmit(0, 0)])
        result = fabric.propagate()
        assert result.at("out") == ()
        assert result.active_terminals() == {}

    def test_split_and_combine(self):
        fabric = OpticalFabric()
        source = fabric.add(InputTerminal("in"))
        splitter = fabric.add(Splitter("split", 2))
        gates = [fabric.add(SOAGate(f"g{i}")) for i in range(2)]
        sinks = [fabric.add(OutputTerminal(f"out{i}")) for i in range(2)]
        fabric.connect(source, 0, splitter, 0)
        for i in range(2):
            fabric.connect(splitter, i, gates[i], 0)
            fabric.connect(gates[i], 0, sinks[i], 0)
        gates[0].enabled = True
        gates[1].enabled = True
        source.inject([OpticalSignal.transmit(0, 0)])
        result = fabric.propagate()
        assert result.at("out0") == result.at("out1") == (
            OpticalSignal.transmit(0, 0),
        )

    def test_combiner_conflict_propagates(self):
        fabric = OpticalFabric()
        sources = [fabric.add(InputTerminal(f"in{i}")) for i in range(2)]
        combiner = fabric.add(Combiner("c", 2))
        sink = fabric.add(OutputTerminal("out"))
        for i in range(2):
            fabric.connect(sources[i], 0, combiner, i)
        fabric.connect(combiner, 0, sink, 0)
        for i, source in enumerate(sources):
            source.inject([OpticalSignal.transmit(i, 0)])
        from repro.fabric.components import CombinerConflictError

        with pytest.raises(CombinerConflictError):
            fabric.propagate()


class TestAccounting:
    def test_census_and_counts(self):
        fabric, *_ = tiny_fabric()
        fabric.add(WavelengthConverter("conv"))
        census = fabric.census()
        assert census["soa_gate"] == 1
        assert census["input_terminal"] == 1
        assert fabric.crosspoint_count() == 1
        assert fabric.converter_count() == 1

    def test_graph_export(self):
        fabric, *_ = tiny_fabric()
        graph = fabric.graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.nodes["gate"]["kind"] == "soa_gate"

    def test_reset_gates(self):
        fabric, source, gate, sink = tiny_fabric()
        gate.enabled = True
        fabric.reset_gates()
        assert not gate.enabled

    def test_terminals_listed_in_insertion_order(self):
        fabric, source, gate, sink = tiny_fabric()
        assert fabric.input_terminals() == [source]
        assert fabric.output_terminals() == [sink]
