"""Tests for the power-budget / crosstalk analysis."""

from __future__ import annotations

import math

import pytest

from repro.core.models import MulticastModel
from repro.fabric.components import (
    InputTerminal,
    OutputTerminal,
    SOAGate,
    Splitter,
)
from repro.fabric.network import OpticalFabric
from repro.fabric.power import LossBudget, analyze_power
from repro.fabric.space_crossbar import SpaceCrossbar
from repro.fabric.wdm_crossbar import build_crossbar
from repro.multistage.fabric_backed import FabricBackedThreeStage


def chain_fabric(gates: int) -> OpticalFabric:
    """in -> gate -> gate -> ... -> out."""
    fabric = OpticalFabric("chain")
    previous = fabric.add(InputTerminal("in"))
    for index in range(gates):
        gate = fabric.add(SOAGate(f"g{index}"))
        fabric.connect(previous, 0, gate, 0)
        previous = gate
    sink = fabric.add(OutputTerminal("out"))
    fabric.connect(previous, 0, sink, 0)
    return fabric


class TestBudget:
    def test_splitter_loss_is_log_fanout(self):
        budget = LossBudget(splitter_excess_db=0.0)
        assert budget.component_loss(Splitter("s", 8)) == pytest.approx(
            10 * math.log10(8)
        )

    def test_gate_gain_offsets_insertion(self):
        budget = LossBudget(gate_insertion_db=1.0, gate_gain_db=3.0)
        assert budget.component_loss(SOAGate("g")) == pytest.approx(-2.0)

    def test_terminals_are_free(self):
        budget = LossBudget()
        assert budget.component_loss(InputTerminal("i")) == 0.0
        assert budget.component_loss(OutputTerminal("o")) == 0.0


class TestChainAnalysis:
    def test_gate_cascade_counted(self):
        report = analyze_power(chain_fabric(5))
        assert report.max_gate_cascade == 5
        assert report.worst_loss_db == pytest.approx(5 * 1.0)
        assert report.max_path_components == 7

    def test_worst_path_reconstruction(self):
        report = analyze_power(chain_fabric(2))
        assert report.worst_loss_path == ("in", "g0", "g1", "out")

    def test_empty_fabric_rejected(self):
        fabric = OpticalFabric("empty")
        fabric.add(InputTerminal("in"))
        with pytest.raises(ValueError, match="no input->output path"):
            analyze_power(fabric)


class TestCrossbarLoss:
    def test_space_crossbar_closed_form(self):
        """Fig. 5 path: splitter(N) + gate + combiner(N)."""
        n = 8
        budget = LossBudget()
        report = analyze_power(SpaceCrossbar(n).fabric, budget)
        expected = (
            2 * (10 * math.log10(n))
            + budget.splitter_excess_db
            + budget.combiner_excess_db
            + budget.gate_insertion_db
        )
        assert report.worst_loss_db == pytest.approx(expected)
        assert report.max_gate_cascade == 1

    def test_loss_grows_with_n(self, model):
        small = analyze_power(build_crossbar(model, 2, 2).fabric)
        large = analyze_power(build_crossbar(model, 6, 2).fabric)
        assert large.worst_loss_db > small.worst_loss_db

    def test_full_reach_lossier_than_msw(self):
        """MSDW/MAW split over Nk branches instead of N: more loss."""
        msw = analyze_power(build_crossbar(MulticastModel.MSW, 4, 4).fabric)
        maw = analyze_power(build_crossbar(MulticastModel.MAW, 4, 4).fabric)
        assert maw.worst_loss_db > msw.worst_loss_db

    def test_single_gate_stage_in_any_crossbar(self, model):
        report = analyze_power(build_crossbar(model, 3, 2).fabric)
        assert report.max_gate_cascade == 1


class TestMultistageLoss:
    def test_three_gate_stages(self):
        physical = FabricBackedThreeStage(2, 2, 3, 2, model=MulticastModel.MAW)
        report = analyze_power(physical.fabric)
        assert report.max_gate_cascade == 3

    def test_multistage_lossier_per_path_than_crossbar(self):
        """The Table 2 trade-off's flip side: fewer gates, more loss."""
        n_ports, k = 4, 2
        crossbar = analyze_power(
            build_crossbar(MulticastModel.MAW, n_ports, k).fabric
        )
        physical = FabricBackedThreeStage(2, 2, 4, k, model=MulticastModel.MAW)
        multistage = analyze_power(physical.fabric)
        assert multistage.worst_loss_db > crossbar.worst_loss_db

    def test_describe_mentions_db(self):
        report = analyze_power(build_crossbar(MulticastModel.MSW, 2, 1).fabric)
        assert "dB" in report.describe()
