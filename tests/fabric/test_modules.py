"""Tests for the rectangular WDM module builder."""

from __future__ import annotations

import pytest

from repro.core.models import MulticastModel
from repro.core.multistage import module_converters, module_crosspoints
from repro.fabric.components import InputTerminal, OutputTerminal
from repro.fabric.modules import build_wdm_module
from repro.fabric.network import OpticalFabric
from repro.fabric.signal import OpticalSignal


def harnessed_module(model, n_in, n_out, k):
    """A module with terminals attached to every fiber for direct testing."""
    fabric = OpticalFabric("test")
    module = build_wdm_module(fabric, "m", model, n_in, n_out, k)
    inputs = []
    for i in range(n_in):
        terminal = fabric.add(InputTerminal(f"tin{i}"))
        name, port = module.entries[i]
        fabric.connect(terminal, 0, name, port)
        inputs.append(terminal)
    outputs = []
    for j in range(n_out):
        terminal = fabric.add(OutputTerminal(f"tout{j}"))
        name, port = module.exits[j]
        fabric.connect(name, port, terminal, 0)
        outputs.append(terminal)
    fabric.check_wiring()
    return fabric, module, inputs, outputs


SHAPES = [(2, 3, 2), (3, 2, 2), (2, 2, 3), (4, 4, 1)]


class TestCounts:
    @pytest.mark.parametrize("a,b,k", SHAPES)
    def test_gate_count_matches_cost_model(self, model, a, b, k):
        fabric, module, _, _ = harnessed_module(model, a, b, k)
        assert fabric.crosspoint_count() == module_crosspoints(model, a, b, k)
        assert module.gate_count() == module_crosspoints(model, a, b, k)

    @pytest.mark.parametrize("a,b,k", SHAPES)
    def test_converter_count_matches_cost_model(self, model, a, b, k):
        fabric, module, _, _ = harnessed_module(model, a, b, k)
        assert fabric.converter_count() == module_converters(model, a, b, k)
        assert module.converter_count() == module_converters(model, a, b, k)

    def test_invalid_shape_rejected(self, model):
        fabric = OpticalFabric()
        with pytest.raises(ValueError):
            build_wdm_module(fabric, "m", model, 0, 2, 1)
        with pytest.raises(ValueError):
            build_wdm_module(fabric, "m2", model, 2, 2, 0)


def run(fabric, inputs, injections):
    fabric.clear_inputs()
    for fiber, signals in injections.items():
        inputs[fiber].inject(signals)
    return fabric.propagate()


class TestRoutingSemantics:
    def test_msw_same_wavelength_delivery(self):
        fabric, module, inputs, _ = harnessed_module(MulticastModel.MSW, 2, 3, 2)
        module.route(0, 1, [(0, 1), (2, 1)])
        result = run(fabric, inputs, {0: [OpticalSignal.transmit(0, 1)]})
        assert len(result.at("tout0")) == 1
        assert result.at("tout0")[0].wavelength == 1
        assert result.at("tout1") == ()
        assert result.at("tout2")[0].wavelength == 1

    def test_msw_refuses_conversion(self):
        _, module, _, _ = harnessed_module(MulticastModel.MSW, 2, 2, 2)
        with pytest.raises(ValueError, match="convert"):
            module.route(0, 0, [(1, 1)])

    def test_msdw_converts_once(self):
        fabric, module, inputs, _ = harnessed_module(MulticastModel.MSDW, 2, 3, 2)
        module.route(1, 0, [(0, 1), (1, 1)])
        result = run(fabric, inputs, {1: [OpticalSignal.transmit(9, 0)]})
        for terminal in ("tout0", "tout1"):
            [signal] = result.at(terminal)
            assert signal.wavelength == 1
            assert signal.source_port == 9

    def test_msdw_refuses_mixed_destinations(self):
        _, module, _, _ = harnessed_module(MulticastModel.MSDW, 2, 2, 2)
        with pytest.raises(ValueError, match="one wavelength"):
            module.route(0, 0, [(0, 0), (1, 1)])

    def test_maw_delivers_mixed_wavelengths(self):
        fabric, module, inputs, _ = harnessed_module(MulticastModel.MAW, 2, 3, 2)
        module.route(0, 0, [(0, 0), (1, 1), (2, 0)])
        result = run(fabric, inputs, {0: [OpticalSignal.transmit(0, 0)]})
        assert result.at("tout0")[0].wavelength == 0
        assert result.at("tout1")[0].wavelength == 1
        assert result.at("tout2")[0].wavelength == 0

    def test_two_routes_share_fabric(self):
        fabric, module, inputs, _ = harnessed_module(MulticastModel.MAW, 2, 2, 2)
        module.route(0, 0, [(0, 1)])
        module.route(1, 1, [(1, 0)])
        result = run(
            fabric,
            inputs,
            {
                0: [OpticalSignal.transmit(0, 0)],
                1: [OpticalSignal.transmit(1, 1)],
            },
        )
        assert result.at("tout0")[0].source_port == 0
        assert result.at("tout1")[0].source_port == 1

    def test_wdm_parallelism_on_one_output_fiber(self):
        """Two connections can land on the same output fiber, different w."""
        fabric, module, inputs, _ = harnessed_module(MulticastModel.MSW, 2, 2, 2)
        module.route(0, 0, [(0, 0)])
        module.route(1, 1, [(0, 1)])
        result = run(
            fabric,
            inputs,
            {
                0: [OpticalSignal.transmit(0, 0)],
                1: [OpticalSignal.transmit(1, 1)],
            },
        )
        signals = result.at("tout0")
        assert {s.wavelength for s in signals} == {0, 1}


class TestRouteValidation:
    def test_channel_reuse_rejected(self, model):
        _, module, _, _ = harnessed_module(model, 2, 2, 2)
        module.route(0, 0, [(0, 0)])
        with pytest.raises(ValueError, match="already"):
            module.route(0, 0, [(1, 0)])

    def test_duplicate_output_fiber_rejected(self, model):
        _, module, _, _ = harnessed_module(model, 2, 2, 2)
        with pytest.raises(ValueError, match="same output fiber"):
            module.route(0, 0, [(0, 0), (0, 0)])

    def test_out_of_range_rejected(self, model):
        _, module, _, _ = harnessed_module(model, 2, 2, 2)
        with pytest.raises(ValueError):
            module.route(5, 0, [(0, 0)])
        with pytest.raises(ValueError):
            module.route(0, 5, [(0, 0)])
        with pytest.raises(ValueError):
            module.route(0, 0, [(5, 0)])
        with pytest.raises(ValueError):
            module.route(0, 0, [(0, 5)])

    def test_empty_deliveries_rejected(self, model):
        _, module, _, _ = harnessed_module(model, 2, 2, 2)
        with pytest.raises(ValueError, match="at least one"):
            module.route(0, 0, [])

    def test_reset_allows_reroute(self, model):
        _, module, _, _ = harnessed_module(model, 2, 2, 2)
        module.route(0, 0, [(0, 0)])
        module.reset()
        module.route(0, 0, [(1, 0)])
