"""Tests for the crossbar constructions of Figs. 4, 6 and 7."""

from __future__ import annotations

import pytest

from repro.core.cost import crossbar_converters, crossbar_crosspoints
from repro.core.models import MulticastModel
from repro.fabric.wdm_crossbar import (
    DeliveryError,
    MAWCrossbar,
    MSDWCrossbar,
    MSWCrossbar,
    build_crossbar,
)
from repro.switching.enumeration import iter_assignments
from repro.switching.generators import AssignmentGenerator
from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection
from repro.switching.validity import ValidityError

SIZES = [(2, 2), (3, 2), (2, 3), (4, 1)]


class TestTable1Costs:
    @pytest.mark.parametrize("n_ports,k", SIZES)
    def test_crosspoints(self, model, n_ports, k):
        crossbar = build_crossbar(model, n_ports, k)
        assert crossbar.crosspoint_count() == crossbar_crosspoints(model, n_ports, k)

    @pytest.mark.parametrize("n_ports,k", SIZES)
    def test_converters(self, model, n_ports, k):
        crossbar = build_crossbar(model, n_ports, k)
        assert crossbar.converter_count() == crossbar_converters(model, n_ports, k)

    def test_factory_returns_right_types(self):
        assert isinstance(build_crossbar(MulticastModel.MSW, 2, 2), MSWCrossbar)
        assert isinstance(build_crossbar(MulticastModel.MSDW, 2, 2), MSDWCrossbar)
        assert isinstance(build_crossbar(MulticastModel.MAW, 2, 2), MAWCrossbar)

    def test_invalid_sizes_rejected(self, model):
        with pytest.raises(ValueError):
            build_crossbar(model, 0, 2)
        with pytest.raises(ValueError):
            build_crossbar(model, 2, 0)


class TestPaperExampleN3K2:
    """The exact example the paper draws: N=3, k=2 (Figs. 6 and 7)."""

    def test_msdw_example_counts(self):
        crossbar = MSDWCrossbar(3, 2, "fig6")
        assert crossbar.crosspoint_count() == 36  # k^2 N^2 = 4*9
        assert crossbar.converter_count() == 6  # kN

    def test_maw_example_counts(self):
        crossbar = MAWCrossbar(3, 2, "fig7")
        assert crossbar.crosspoint_count() == 36
        assert crossbar.converter_count() == 6

    def test_msw_fig4_counts(self):
        crossbar = MSWCrossbar(3, 2, "fig4")
        assert crossbar.crosspoint_count() == 18  # k N^2


class TestRealization:
    def test_single_multicast(self, model):
        crossbar = build_crossbar(model, 3, 2)
        assignment = MulticastAssignment(
            [MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0), Endpoint(2, 0)])]
        )
        crossbar.realize(assignment)

    def test_empty_assignment(self, model):
        crossbar = build_crossbar(model, 2, 2)
        result = crossbar.realize(MulticastAssignment.empty())
        assert result.active_terminals() == {}

    def test_maw_cross_wavelength(self):
        crossbar = build_crossbar(MulticastModel.MAW, 3, 2)
        assignment = MulticastAssignment(
            [
                MulticastConnection(
                    Endpoint(0, 0), [Endpoint(1, 1), Endpoint(2, 0)]
                )
            ]
        )
        result = crossbar.realize(assignment)
        [at_one] = result.at("maw3x2.out1")
        assert at_one.wavelength == 1
        assert at_one.source_wavelength == 0

    def test_msdw_converted_delivery(self):
        crossbar = build_crossbar(MulticastModel.MSDW, 3, 2)
        assignment = MulticastAssignment(
            [
                MulticastConnection(
                    Endpoint(0, 0), [Endpoint(1, 1), Endpoint(2, 1)]
                )
            ]
        )
        result = crossbar.realize(assignment)
        for terminal in ("msdw3x2.out1", "msdw3x2.out2"):
            [signal] = result.at(terminal)
            assert signal.wavelength == 1

    def test_model_rule_enforced(self):
        crossbar = build_crossbar(MulticastModel.MSW, 3, 2)
        cross_wavelength = MulticastAssignment(
            [MulticastConnection(Endpoint(0, 0), [Endpoint(1, 1)])]
        )
        with pytest.raises(ValidityError):
            crossbar.realize(cross_wavelength)

    @pytest.mark.parametrize("n_ports,k", [(3, 2), (2, 3)])
    def test_random_assignments_realize(self, model, n_ports, k):
        crossbar = build_crossbar(model, n_ports, k)
        generator = AssignmentGenerator(model, n_ports, k, rng=99)
        for _ in range(15):
            crossbar.realize(generator.random_assignment(0.25))

    def test_random_full_assignments_realize(self, model):
        crossbar = build_crossbar(model, 3, 2)
        generator = AssignmentGenerator(model, 3, 2, rng=4)
        for _ in range(10):
            crossbar.realize(generator.random_full_assignment())

    def test_every_small_assignment_realizes(self, model):
        """Exhaustive nonblocking check: the crossbar realizes its whole
        multicast capacity for N=2, k=2 (the Table 1 claim in photons)."""
        crossbar = build_crossbar(model, 2, 2)
        count = 0
        for assignment in iter_assignments(model, 2, 2, full=False):
            crossbar.realize(assignment)
            count += 1
        # The count is exactly the any-multicast capacity.
        from repro.core.capacity import any_multicast_capacity

        assert count == any_multicast_capacity(model, 2, 2)

    def test_reuse_after_realization(self, model):
        crossbar = build_crossbar(model, 2, 2)
        generator = AssignmentGenerator(model, 2, 2, rng=0)
        first = generator.random_full_assignment()
        second = generator.random_full_assignment()
        crossbar.realize(first)
        crossbar.realize(second)  # state fully reset between calls


class TestDeliveryVerification:
    def test_sabotaged_gate_detected(self):
        """If a gate is silently disabled after configuration, verification
        must catch the missing delivery."""
        crossbar = build_crossbar(MulticastModel.MSW, 2, 1)
        assignment = MulticastAssignment(
            [MulticastConnection(Endpoint(0, 0), [Endpoint(1, 0)])]
        )
        crossbar.realize(assignment)  # sanity

        # Monkeypatch: disable all gates post-configuration.
        original_route = crossbar.module.route

        def sabotaged(*args, **kwargs):
            original_route(*args, **kwargs)
            crossbar.fabric.reset_gates()

        crossbar.module.route = sabotaged  # type: ignore[method-assign]
        with pytest.raises(DeliveryError, match="missing"):
            crossbar.realize(assignment)
