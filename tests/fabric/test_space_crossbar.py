"""Tests for the single-wavelength multicast space switch (Fig. 5)."""

from __future__ import annotations

from itertools import product

import pytest

from repro.fabric.space_crossbar import SpaceCrossbar


class TestStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_crosspoint_count_is_n_squared(self, n):
        assert SpaceCrossbar(n).crosspoint_count() == n * n

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SpaceCrossbar(0)


class TestRouting:
    def test_unicast(self):
        xbar = SpaceCrossbar(3)
        assert xbar.delivered({0: {2}}) == {2: 0}

    def test_multicast(self):
        xbar = SpaceCrossbar(3)
        assert xbar.delivered({1: {0, 1, 2}}) == {0: 1, 1: 1, 2: 1}

    def test_broadcast_plus_idle_inputs(self):
        xbar = SpaceCrossbar(4)
        assert xbar.delivered({2: {0, 1, 2, 3}}) == {j: 2 for j in range(4)}

    def test_exhaustive_full_assignments_n3(self):
        """Every map {output -> input} must be deliverable: Fig. 5's claim."""
        xbar = SpaceCrossbar(3)
        for choice in product(range(3), repeat=3):
            routes: dict[int, set[int]] = {}
            for output_port, input_port in enumerate(choice):
                routes.setdefault(input_port, set()).add(output_port)
            assert xbar.delivered(routes) == {
                j: choice[j] for j in range(3)
            }

    def test_conflicting_routes_rejected(self):
        xbar = SpaceCrossbar(3)
        with pytest.raises(ValueError, match="twice"):
            xbar.configure({0: {1}, 2: {1}})

    def test_reconfiguration_clears_previous_state(self):
        xbar = SpaceCrossbar(3)
        xbar.delivered({0: {0, 1, 2}})
        assert xbar.delivered({1: {2}}) == {2: 1}
