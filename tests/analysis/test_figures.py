"""Tests for the implied-figure data series."""

from __future__ import annotations

from repro.analysis.figures import (
    bound_vs_x,
    capacity_growth,
    cost_vs_n,
    find_crossover,
)
from repro.core.models import Construction, MulticastModel


class TestCostVsN:
    def test_multistage_ratio_grows(self):
        points = cost_vs_n([256, 1024, 4096], 4)
        ratios = [point.ratio for point in points]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 2.0

    def test_asymptotic_only_for_large_n(self):
        points = cost_vs_n([64, 256], 4)
        assert points[0].multistage_asymptotic is None
        assert points[1].multistage_asymptotic is not None

    def test_crossbar_column_exact(self):
        [point] = cost_vs_n([128], 2, MulticastModel.MAW)
        assert point.crossbar == 4 * 128 * 128


class TestCrossover:
    def test_exists_for_every_model(self, model):
        crossover = find_crossover(4, model)
        assert crossover is not None
        assert crossover.n_ports in crossover.swept

    def test_stronger_models_cross_earlier_or_equal(self):
        """The k^2 crossbar penalty makes MSDW/MAW multistage pay off sooner."""
        msw = find_crossover(4, MulticastModel.MSW).n_ports
        maw = find_crossover(4, MulticastModel.MAW).n_ports
        assert maw <= msw

    def test_crossover_is_genuine(self, model):
        from repro.core.cost import crossbar_crosspoints
        from repro.core.multistage import optimal_design

        crossover = find_crossover(2, model)
        design = optimal_design(crossover.n_ports, 2, model)
        assert design.cost.crosspoints < crossbar_crosspoints(
            model, crossover.n_ports, 2
        )


class TestBoundVsX:
    def test_profile_covers_legal_range(self, construction):
        profile = bound_vs_x(8, 8, 4, construction)
        assert [x for x, _ in profile] == list(range(1, 8))

    def test_u_shape_for_large_r(self, construction):
        """m(1) is large (pays r), m(max x) is larger than the optimum."""
        profile = dict(bound_vs_x(10, 40, 2, construction))
        m_min = min(profile.values())
        assert profile[1] > m_min
        assert profile[max(profile)] > m_min

    def test_maw_dominant_pointwise_geq(self):
        msw = dict(bound_vs_x(6, 12, 3, Construction.MSW_DOMINANT))
        maw = dict(bound_vs_x(6, 12, 3, Construction.MAW_DOMINANT))
        for x in msw:
            assert maw[x] >= msw[x]


class TestCapacityGrowth:
    def test_monotone_in_k(self):
        points = capacity_growth(6, [1, 2, 3, 4])
        for model in MulticastModel:
            series = [point.log10_full[model.value] for point in points]
            assert series == sorted(series)

    def test_model_order_at_every_k(self):
        for point in capacity_growth(6, [2, 3]):
            assert (
                point.log10_full["MSW"]
                < point.log10_full["MSDW"]
                < point.log10_full["MAW"]
            )

    def test_k1_models_coincide(self):
        [point] = capacity_growth(6, [1])
        values = set(point.log10_full.values())
        assert len(values) == 1
