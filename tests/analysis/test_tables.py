"""Tests for the Table 1 / Table 2 regeneration."""

from __future__ import annotations

import pytest

from repro.analysis.rendering import render_table
from repro.analysis.tables import (
    render_table1,
    render_table2,
    table1,
    table1_symbolic,
    table2,
    table2_symbolic,
)
from repro.core.capacity import any_multicast_capacity, full_multicast_capacity
from repro.core.cost import crossbar_converters, crossbar_crosspoints
from repro.core.models import Construction, MulticastModel


class TestTable1:
    def test_rows_cover_all_models_in_paper_order(self):
        rows = table1(4, 2)
        assert [row.model for row in rows] == [
            MulticastModel.MSW,
            MulticastModel.MSDW,
            MulticastModel.MAW,
        ]

    def test_values_match_core(self):
        for row in table1(3, 2):
            assert row.capacity_full == full_multicast_capacity(row.model, 3, 2)
            assert row.capacity_any == any_multicast_capacity(row.model, 3, 2)
            assert row.crosspoints == crossbar_crosspoints(row.model, 3, 2)
            assert row.converters == crossbar_converters(row.model, 3, 2)

    def test_paper_qualitative_shape(self):
        """Capacity up, MSDW/MAW same cost, MSW zero converters."""
        msw, msdw, maw = table1(4, 3)
        assert msw.capacity_full < msdw.capacity_full < maw.capacity_full
        assert msdw.crosspoints == maw.crosspoints == 3 * msw.crosspoints
        assert msw.converters == 0
        assert msdw.converters == maw.converters == 12

    def test_log10_properties(self):
        row = table1(8, 4)[2]
        assert row.log10_capacity_full < row.log10_capacity_any

    def test_symbolic_rows(self):
        rows = table1_symbolic()
        assert [row["model"] for row in rows] == ["MSW", "MSDW", "MAW"]
        assert rows[0]["capacity_full"] == "N^(Nk)"

    def test_render_contains_all_models(self):
        text = render_table1(4, 2)
        for label in ("MSW", "MSDW", "MAW", "Table 1"):
            assert label in text

    def test_render_switches_to_log_for_huge_capacities(self):
        text = render_table1(16, 8)
        assert "10^" in text


class TestTable2:
    def test_six_rows_in_paper_order(self):
        rows = table2(64, 2)
        assert [row.label for row in rows] == [
            "MSW/CB",
            "MSW/MS",
            "MSDW/CB",
            "MSDW/MS",
            "MAW/CB",
            "MAW/MS",
        ]

    def test_cb_rows_match_core(self):
        for row in table2(64, 2):
            if row.implementation == "CB":
                assert row.crosspoints == crossbar_crosspoints(row.model, 64, 2)
                assert row.design is None

    def test_ms_rows_carry_nonblocking_designs(self):
        from repro.core.multistage import is_nonblocking

        for row in table2(64, 2):
            if row.implementation == "MS":
                design = row.design
                assert design is not None
                assert is_nonblocking(
                    design.m,
                    design.n,
                    design.r,
                    design.k,
                    Construction.MSW_DOMINANT,
                    design.x,
                )

    def test_multistage_wins_at_large_n(self):
        rows = {row.label: row for row in table2(1024, 4)}
        for model in ("MSW", "MSDW", "MAW"):
            assert rows[f"{model}/MS"].crosspoints < rows[f"{model}/CB"].crosspoints

    def test_maw_ms_converters_kn(self):
        rows = {row.label: row for row in table2(256, 4)}
        assert rows["MAW/MS"].converters == 4 * 256
        # MSDW/MS pays the log factor in converters.
        assert rows["MSDW/MS"].converters > rows["MAW/MS"].converters

    def test_symbolic_rows(self):
        rows = table2_symbolic()
        assert len(rows) == 6
        assert rows[1]["crosspoints"].startswith("O(")

    def test_render(self):
        text = render_table2(64, 2)
        assert "MSW/MS" in text and "n=" in text


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])


class TestTable2BoundChoice:
    def test_corrected_default_never_smaller_than_paper(self):
        corrected = {r.label: r for r in table2(256, 4)}
        paper = {r.label: r for r in table2(256, 4, use_paper_bound=True)}
        for model in ("MSDW", "MAW"):
            assert (
                corrected[f"{model}/MS"].design.m
                > paper[f"{model}/MS"].design.m
            )
        # MSW rows identical under both bounds.
        assert corrected["MSW/MS"].design.m == paper["MSW/MS"].design.m

    def test_corrected_designs_still_beat_crossbar(self):
        rows = {r.label: r for r in table2(1024, 4)}
        for model in ("MSW", "MSDW", "MAW"):
            assert rows[f"{model}/MS"].crosspoints < rows[f"{model}/CB"].crosspoints
