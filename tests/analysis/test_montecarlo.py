"""Tests for the Monte-Carlo blocking probability study."""

from __future__ import annotations

from repro.analysis.montecarlo import blocking_probability, blocking_vs_m
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import min_middle_switches_msw_dominant


class TestBlockingProbability:
    def test_zero_at_the_bound(self):
        m = min_middle_switches_msw_dominant(3, 3, 1, x=1)
        estimate = blocking_probability(3, 3, m, 1, x=1, steps=600, seeds=(0, 1))
        assert estimate.blocked == 0
        assert estimate.attempts > 100

    def test_positive_when_starved(self):
        estimate = blocking_probability(3, 3, 1, 1, x=1, steps=600, seeds=(0, 1))
        assert estimate.probability > 0.0

    def test_probability_field(self):
        estimate = blocking_probability(2, 2, 1, 1, x=1, steps=200, seeds=(0,))
        assert 0.0 <= estimate.probability <= 1.0

    def test_deterministic_given_seeds(self):
        a = blocking_probability(3, 3, 2, 1, x=1, steps=300, seeds=(5,))
        b = blocking_probability(3, 3, 2, 1, x=1, steps=300, seeds=(5,))
        assert (a.attempts, a.blocked) == (b.attempts, b.blocked)

    def test_dropped_connections_do_not_poison_state(self):
        """After a blocked setup, the simulation must keep running and the
        totals must stay consistent."""
        estimate = blocking_probability(2, 2, 1, 1, x=1, steps=800, seeds=(3,))
        assert estimate.attempts >= estimate.blocked > 0


class TestBlockingVsM:
    def test_monotone_trend_and_zero_tail(self):
        bound = min_middle_switches_msw_dominant(3, 3, 1, x=1)
        estimates = blocking_vs_m(
            3, 3, 1, list(range(1, bound + 1)), x=1, steps=500, seeds=(0, 1)
        )
        probabilities = [estimate.probability for estimate in estimates]
        # Starved end blocks, provisioned end does not.
        assert probabilities[0] > 0
        assert probabilities[-1] == 0.0
        # Broad monotone trend: first half average >= second half average.
        half = len(probabilities) // 2
        assert sum(probabilities[:half]) >= sum(probabilities[half:])

    def test_adversarial_mode_marks_witnessed_points(self):
        estimates = blocking_vs_m(
            3,
            3,
            1,
            [4],
            x=1,
            steps=200,
            seeds=(0,),
            adversarial=True,
            adversary_seeds=30,
        )
        # At m=4 random traffic rarely blocks but the adversary finds a
        # witness (demonstrated in test_adversary); either way the field
        # is well-formed.
        [estimate] = estimates
        assert estimate.blocked in (0, 1) or estimate.blocked > 1

    def test_respects_configuration(self):
        estimates = blocking_vs_m(
            2,
            2,
            2,
            [1, 4],
            model=MulticastModel.MAW,
            construction=Construction.MAW_DOMINANT,
            x=1,
            steps=200,
            seeds=(0,),
        )
        assert [e.m for e in estimates] == [1, 4]
        assert all(e.model is MulticastModel.MAW for e in estimates)
