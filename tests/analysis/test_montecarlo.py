"""Tests for the Monte-Carlo blocking probability study."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.montecarlo import (
    BlockingEstimate,
    blocking_probability,
    blocking_vs_m,
)
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import min_middle_switches_msw_dominant


class TestBlockingProbability:
    def test_zero_at_the_bound(self):
        m = min_middle_switches_msw_dominant(3, 3, 1, x=1)
        estimate = blocking_probability(3, 3, m, 1, x=1, steps=600, seeds=(0, 1))
        assert estimate.blocked == 0
        assert estimate.attempts > 100

    def test_positive_when_starved(self):
        estimate = blocking_probability(3, 3, 1, 1, x=1, steps=600, seeds=(0, 1))
        assert estimate.probability > 0.0

    def test_probability_field(self):
        estimate = blocking_probability(2, 2, 1, 1, x=1, steps=200, seeds=(0,))
        assert 0.0 <= estimate.probability <= 1.0

    def test_deterministic_given_seeds(self):
        a = blocking_probability(3, 3, 2, 1, x=1, steps=300, seeds=(5,))
        b = blocking_probability(3, 3, 2, 1, x=1, steps=300, seeds=(5,))
        assert (a.attempts, a.blocked) == (b.attempts, b.blocked)

    def test_dropped_connections_do_not_poison_state(self):
        """After a blocked setup, the simulation must keep running and the
        totals must stay consistent."""
        estimate = blocking_probability(2, 2, 1, 1, x=1, steps=800, seeds=(3,))
        assert estimate.attempts >= estimate.blocked > 0


class TestBlockingVsM:
    def test_monotone_trend_and_zero_tail(self):
        bound = min_middle_switches_msw_dominant(3, 3, 1, x=1)
        estimates = blocking_vs_m(
            3, 3, 1, list(range(1, bound + 1)), x=1, steps=500, seeds=(0, 1)
        )
        probabilities = [estimate.probability for estimate in estimates]
        # Starved end blocks, provisioned end does not.
        assert probabilities[0] > 0
        assert probabilities[-1] == 0.0
        # Broad monotone trend: first half average >= second half average.
        half = len(probabilities) // 2
        assert sum(probabilities[:half]) >= sum(probabilities[half:])

    def test_adversarial_mode_marks_witnessed_points(self):
        estimates = blocking_vs_m(
            3,
            3,
            1,
            [4],
            x=1,
            steps=200,
            seeds=(0,),
            adversarial=True,
            adversary_seeds=30,
        )
        # At m=4 random traffic rarely blocks but the adversary finds a
        # witness (demonstrated in test_adversary); either way the field
        # is well-formed.
        [estimate] = estimates
        assert estimate.blocked in (0, 1) or estimate.blocked > 1

    def test_respects_configuration(self):
        estimates = blocking_vs_m(
            2,
            2,
            2,
            [1, 4],
            model=MulticastModel.MAW,
            construction=Construction.MAW_DOMINANT,
            x=1,
            steps=200,
            seeds=(0,),
        )
        assert [e.m for e in estimates] == [1, 4]
        assert all(e.model is MulticastModel.MAW for e in estimates)


def _estimate(attempts: int, blocked: int, m: int = 2) -> BlockingEstimate:
    return BlockingEstimate(
        n=3, r=3, m=m, k=1,
        construction=Construction.MSW_DOMINANT, model=MulticastModel.MSW,
        x=1, attempts=attempts, blocked=blocked,
    )


class TestIntervalStatistics:
    def test_stderr(self):
        estimate = _estimate(400, 100)
        p = 0.25
        assert math.isclose(
            estimate.stderr, math.sqrt(p * (1 - p) / 400)
        )

    def test_stderr_without_attempts_is_infinite(self):
        assert _estimate(0, 0).stderr == math.inf

    def test_wilson_interval_brackets_the_point_estimate(self):
        estimate = _estimate(400, 100)
        low, high = estimate.ci()
        assert low < estimate.probability < high
        assert 0.0 <= low and high <= 1.0

    def test_wilson_shrinks_at_zero(self):
        """The Wald interval degenerates to width 0 at p = 0; Wilson must
        not -- and it must still tighten with n."""
        small, large = _estimate(100, 0), _estimate(10_000, 0)
        assert small.half_width() > large.half_width() > 0.0

    def test_higher_level_is_wider(self):
        estimate = _estimate(500, 50)
        assert estimate.half_width(0.99) > estimate.half_width(0.95)

    def test_no_attempts_is_the_vacuous_interval(self):
        estimate = _estimate(0, 0)
        assert estimate.ci() == (0.0, 1.0)
        assert estimate.half_width() == math.inf

    def test_merged_pools_counts(self):
        merged = _estimate(300, 30).merged(_estimate(200, 10))
        assert (merged.attempts, merged.blocked) == (500, 40)

    def test_merged_rejects_cell_mismatch(self):
        with pytest.raises(ValueError, match="cell"):
            _estimate(300, 30, m=2).merged(_estimate(200, 10, m=3))

    def test_pooled_equals_pairwise_merge(self):
        parts = [_estimate(100, 9), _estimate(250, 21), _estimate(50, 3)]
        pooled = BlockingEstimate.pooled(parts)
        assert (pooled.attempts, pooled.blocked) == (400, 33)


class TestEstimateJson:
    def test_round_trip_includes_interval_fields(self):
        estimate = _estimate(400, 100)
        payload = json.loads(estimate.to_json())
        assert payload["ci95"] == list(estimate.ci())
        assert payload["half_width95"] == estimate.half_width()
        assert math.isclose(payload["stderr"], estimate.stderr)
        assert BlockingEstimate.from_json(estimate.to_json()) == estimate

    def test_zero_attempt_stderr_serializes_as_null(self):
        payload = json.loads(_estimate(0, 0).to_json())
        assert payload["stderr"] is None

    def test_old_payloads_without_interval_fields_still_load(self):
        """Backward compatibility: payloads written before the interval
        statistics existed must still deserialize."""
        estimate = _estimate(400, 100)
        old = json.loads(estimate.to_json())
        for field in ("stderr", "ci95", "half_width95", "adaptive", "meta"):
            old.pop(field, None)
        back = BlockingEstimate.from_json(json.dumps(old))
        assert back == estimate
        assert back.adaptive is None and back.meta is None
