"""Tests for the Section 2.4 cost-performance comparison."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.tradeoffs import compare_models, dominated_models
from repro.core.models import MulticastModel


class TestCompareModels:
    def test_three_rows(self):
        rows = compare_models(4, 2)
        assert [row.model for row in rows] == list(MulticastModel)

    def test_figure_of_merit_finite(self):
        for row in compare_models(6, 3):
            assert row.log10_capacity_per_crosspoint > 0


class TestDomination:
    @given(st.integers(2, 6), st.integers(2, 4))
    def test_msdw_dominated_for_k_gt_1(self, n_ports, k):
        """The paper's Section 2.4 conclusion, exactly."""
        assert dominated_models(n_ports, k) == {MulticastModel.MSDW}

    @given(st.integers(1, 8))
    def test_nothing_dominated_at_k1(self, n_ports):
        assert dominated_models(n_ports, 1) == set()

    def test_msw_maw_genuine_tradeoff(self):
        """MSW is cheaper, MAW is stronger; neither dominates."""
        rows = {row.model: row for row in compare_models(4, 3)}
        msw, maw = rows[MulticastModel.MSW], rows[MulticastModel.MAW]
        assert msw.cost.crosspoints < maw.cost.crosspoints
        assert msw.capacity.full < maw.capacity.full
