"""Tests for the stochastic offered-load study."""

from __future__ import annotations

import pytest

from repro.analysis.traffic import LoadPoint, loss_vs_load, simulate_offered_load
from repro.core.corrected import min_middle_switches_corrected
from repro.core.models import Construction, MulticastModel


class TestSimulation:
    def test_deterministic_given_seed(self):
        a = simulate_offered_load(2, 2, 3, 1, offered_erlangs=2.0, seed=5, arrivals=300)
        b = simulate_offered_load(2, 2, 3, 1, offered_erlangs=2.0, seed=5, arrivals=300)
        assert a == b

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            simulate_offered_load(2, 2, 3, 1, offered_erlangs=0.0)

    def test_zero_fabric_loss_at_corrected_bound(self):
        """The theorems' guarantee survives heavy stochastic load."""
        n, r, k = 3, 3, 2
        model = MulticastModel.MAW
        m = min_middle_switches_corrected(
            n, r, k, Construction.MSW_DOMINANT, model, x=1
        )
        for load in (2.0, 8.0, 20.0):
            point = simulate_offered_load(
                n, r, m, k,
                offered_erlangs=load, model=model, x=1, arrivals=1200, seed=2,
            )
            assert point.fabric_losses == 0

    def test_starved_network_loses_traffic(self):
        point = simulate_offered_load(
            3, 3, 2, 2,
            offered_erlangs=8.0,
            model=MulticastModel.MAW,
            x=1,
            arrivals=1200,
            seed=2,
        )
        assert point.fabric_loss_probability > 0.05

    def test_carried_load_saturates(self):
        """Mean carried load approaches the offered load when unblocked
        and is capped by endpoint capacity under overload."""
        light = simulate_offered_load(
            3, 3, 10, 1, offered_erlangs=1.0, arrivals=1500, seed=0
        )
        heavy = simulate_offered_load(
            3, 3, 10, 1, offered_erlangs=30.0, arrivals=1500, seed=0
        )
        assert light.mean_carried == pytest.approx(1.0, abs=0.35)
        assert heavy.mean_carried <= 9.0  # at most N*k concurrent sources

    def test_loss_probability_fields(self):
        point = LoadPoint(
            offered_erlangs=1.0,
            arrivals=100,
            fabric_losses=5,
            endpoint_losses=10,
            mean_carried=0.9,
        )
        assert point.fabric_loss_probability == 0.05
        assert point.endpoint_busy_probability == 0.10


class TestCurve:
    def test_loss_increases_with_load_below_bound(self):
        points = loss_vs_load(
            3, 3, 3, 1, [0.5, 4.0, 16.0], x=1, arrivals=1200, seed=1
        )
        losses = [point.fabric_loss_probability for point in points]
        assert losses[0] < losses[-1]

    def test_curve_is_ordered_by_input(self):
        points = loss_vs_load(2, 2, 3, 1, [1.0, 2.0], arrivals=200, seed=0)
        assert [p.offered_erlangs for p in points] == [1.0, 2.0]
