"""Tests for the aspect-ratio sensitivity study."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    aspect_ratio_study,
    nearest_square_point,
)
from repro.core.models import MulticastModel
from repro.core.multistage import optimal_design


class TestStudy:
    def test_covers_all_proper_factorizations(self):
        points = aspect_ratio_study(64, 2)
        assert [(p.n, p.r) for p in points] == [
            (2, 32), (4, 16), (8, 8), (16, 4), (32, 2),
        ]

    def test_minimum_matches_optimal_design(self):
        points = aspect_ratio_study(64, 2)
        best = min(points, key=lambda p: p.crosspoints)
        design = optimal_design(64, 2)
        assert best.crosspoints == design.cost.crosspoints

    def test_extreme_splits_are_penalized(self):
        points = aspect_ratio_study(256, 2)
        best = min(p.crosspoints for p in points)
        widest = points[0].crosspoints  # n = 2
        narrowest = points[-1].crosspoints  # r = 2
        assert widest > best
        assert narrowest > best

    def test_square_split_near_optimal(self):
        """The paper's n = r choice is within 2x of the true optimum."""
        for n_ports in (64, 256, 1024):
            points = aspect_ratio_study(n_ports, 4, MulticastModel.MAW)
            best = min(p.crosspoints for p in points)
            square = nearest_square_point(points)
            assert square.crosspoints <= 2 * best

    def test_prime_sizes_rejected(self):
        with pytest.raises(ValueError):
            aspect_ratio_study(7, 2)
        with pytest.raises(ValueError):
            aspect_ratio_study(2, 2)

    def test_aspect_property(self):
        points = aspect_ratio_study(16, 1)
        squares = [p for p in points if p.n == p.r]
        assert squares and squares[0].aspect == 1.0
