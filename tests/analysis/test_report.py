"""Tests for the one-shot report generator."""

from __future__ import annotations

from repro.analysis.report import generate_report


class TestGenerateReport:
    def test_fast_report_contains_every_section(self):
        report = generate_report(n_ports=64, k=2, fast=True)
        for heading in (
            "# WDM multicast reproduction report",
            "## Table 1",
            "## Table 2",
            "## Crossbar/multistage crossover",
            "## Theorem 1/2 bound profiles",
            "## Capacity growth",
            "## Blocking probability vs m",
            "## Fig. 10 scenario",
            "## Theorem-1 gap",
            "## Recursive construction",
            "## Power / crosstalk",
            "## Offered-load study",
            "## WDM vs electronic scheduling",
        ):
            assert heading in report, heading

    def test_report_reflects_parameters(self):
        report = generate_report(n_ports=64, k=2, fast=True)
        assert "Parameters: N=64, k=2." in report
        assert "N=64" in report

    def test_fig10_outcome_embedded(self):
        report = generate_report(n_ports=64, k=2, fast=True)
        assert "MSW-dominant: BLOCKED" in report
        assert "MAW-dominant: routed" in report

    def test_gap_numbers_embedded(self):
        report = generate_report(n_ports=64, k=2, fast=True)
        assert "paper m_min=5" in report
        assert "corrected m_min=11" in report
