"""Tests for the CSV/JSON data exporters."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import flatten, to_csv, to_json, write_series
from repro.analysis.figures import cost_vs_n
from repro.analysis.tables import table1
from repro.core.models import MulticastModel


class TestFlatten:
    def test_dataclass_with_enum(self):
        row = flatten(table1(3, 2)[0])
        assert row["model"] == "MSW"
        assert row["crosspoints"] == 18

    def test_mapping(self):
        assert flatten({"a": 1, "b": {"c": 2}}) == {"a": 1, "b.c": 2}

    def test_sequence_values_joined(self):
        assert flatten({"xs": [3, 1, 2]}) == {"xs": "1;2;3"}

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            flatten(42)


class TestCsv:
    def test_table1_roundtrip(self):
        text = to_csv(table1(4, 2))
        lines = text.strip().splitlines()
        assert lines[0].startswith("model,")
        assert len(lines) == 4  # header + 3 models
        assert "MSDW" in lines[2]

    def test_cost_points(self):
        text = to_csv(cost_vs_n([64, 256], 2, MulticastModel.MSW))
        assert "n_ports" in text and "multistage" in text


class TestJson:
    def test_parses_back(self):
        payload = json.loads(to_json(table1(3, 2)))
        assert len(payload) == 3
        assert payload[2]["model"] == "MAW"


class TestWriteSeries:
    def test_csv_file(self, tmp_path):
        path = write_series(table1(3, 2), tmp_path / "t1.csv")
        assert path.read_text().startswith("model,")

    def test_json_file(self, tmp_path):
        path = write_series(table1(3, 2), tmp_path / "t1.json")
        assert json.loads(path.read_text())[0]["model"] == "MSW"

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="suffix"):
            write_series(table1(3, 2), tmp_path / "t1.xlsx")
