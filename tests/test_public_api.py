"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_docstring(self):
        """The example in the package docstring must actually run."""
        from repro import CapacityResult, MulticastModel, optimal_design

        cap = CapacityResult.compute(MulticastModel.MAW, n_ports=8, k=4)
        design = optimal_design(n_ports=64, k=4)
        assert cap.log10_full > 0
        assert design.m >= 1
        assert design.cost.crosspoints > 0


SUBPACKAGES = [
    "repro.analysis",
    "repro.api",
    "repro.scheduling",
    "repro.combinatorics",
    "repro.core",
    "repro.fabric",
    "repro.multistage",
    "repro.obs",
    "repro.switching",
]


@pytest.mark.parametrize("package_name", SUBPACKAGES)
class TestSubpackages:
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name}"

    def test_docstring_present(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__) > 40


class TestDocstringCoverage:
    @pytest.mark.parametrize("package_name", SUBPACKAGES)
    def test_public_callables_documented(self, package_name):
        """Every exported class/function carries a docstring."""
        package = importlib.import_module(package_name)
        for name in package.__all__:
            member = getattr(package, name)
            if callable(member):
                assert member.__doc__, f"{package_name}.{name} lacks a docstring"
