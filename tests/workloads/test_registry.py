"""The workload registry: discovery, construction, keys and identity.

The registry is the CLI's and facade's single source of truth for
what traffic models exist; these tests pin its error messages (the
CLI surfaces them verbatim), the coercion rules of ``make_workload``,
the tagged-dict round-trip, and -- most load-bearing -- the key
contract: uniform traffic contributes *nothing* to cache/stream keys
(warm caches stay warm), every other workload contributes a token
that can never collide with it.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.workloads import (
    HeavyTailFanoutConfig,
    HotspotConfig,
    PoissonErlangConfig,
    TraceConfig,
    UniformConfig,
    WorkloadConfig,
    make_workload,
    workload_class,
    workload_from_dict,
    workload_names,
)
from repro.workloads.base import register_workload
from repro.workloads.keys import key_fragment, schedule_rng, workload_fragment


class TestRegistry:
    def test_the_shipped_models_are_registered(self):
        assert workload_names() == [
            "heavytail_fanout",
            "hotspot",
            "poisson_erlang",
            "trace",
            "uniform",
        ]

    def test_workload_class_resolves_each_name(self):
        for name in workload_names():
            cls = workload_class(name)
            assert issubclass(cls, WorkloadConfig)
            assert cls.workload == name

    def test_unknown_workload_lists_the_registry(self):
        with pytest.raises(ValueError, match="unknown workload 'fractal'"):
            workload_class("fractal")
        with pytest.raises(ValueError, match="heavytail_fanout, hotspot"):
            make_workload("fractal")

    def test_duplicate_tag_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_workload
            class Clash(UniformConfig):
                pass

    def test_configs_are_frozen(self):
        config = HotspotConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.zipf_s = 2.0


class TestMakeWorkload:
    def test_coerces_cli_strings(self):
        config = make_workload(
            "hotspot", zipf_s="1.5", hot_fraction="0.5", steps="300",
            seeds="0,2,4", adversarial="false",
        )
        assert config == HotspotConfig(
            zipf_s=1.5, hot_fraction=0.5, steps=300, seeds=(0, 2, 4)
        )

    def test_typed_values_pass_through(self):
        config = make_workload("heavytail_fanout", alpha=0.9, steps=100)
        assert config == HeavyTailFanoutConfig(alpha=0.9, steps=100)

    def test_unknown_parameter_lists_the_fields(self):
        with pytest.raises(ValueError, match="no parameter 'gamma'"):
            make_workload("hotspot", gamma="3")
        with pytest.raises(ValueError, match="zipf_s"):
            make_workload("hotspot", gamma="3")


class TestTaggedDictRoundTrip:
    CONFIGS = [
        UniformConfig(steps=77, seeds=(1, 2)),
        HotspotConfig(zipf_s=1.7, hot_fraction=0.5, max_fanout=2),
        HeavyTailFanoutConfig(alpha=0.8, adversary_seeds=3),
        PoissonErlangConfig(offered_erlangs=9.5, mean_holding=0.5),
    ]

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.workload)
    def test_as_dict_json_round_trips(self, config):
        payload = json.dumps(config.as_dict())
        assert workload_from_dict(json.loads(payload)) == config

    def test_trace_round_trips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        config = TraceConfig(path=str(path))
        assert workload_from_dict(config.as_dict()) == config

    def test_dict_without_tag_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            workload_from_dict({"steps": 10})


class TestTokens:
    def test_uniform_token_is_none(self):
        # The compatibility anchor: uniform joins no key anywhere, so
        # every pre-workload cache entry and adaptive schedule is
        # still addressed identically.
        assert UniformConfig().token() is None
        assert UniformConfig(steps=123, seeds=(5,)).token() is None

    def test_non_uniform_tokens_carry_tag_and_shape(self):
        assert HotspotConfig(zipf_s=1.5).token() == {
            "workload": "hotspot", "zipf_s": 1.5, "hot_fraction": 0.25,
        }
        assert HeavyTailFanoutConfig().token() == {
            "workload": "heavytail_fanout", "alpha": 1.1,
        }

    def test_tokens_exclude_sampling_surface(self):
        # seeds/steps/adversarial address the *sample*, not the model;
        # they are already in every key, so the token must not repeat
        # them (identical shapes share warm cache cells across budgets).
        token = HotspotConfig(steps=999, seeds=(7, 8), zipf_s=1.5).token()
        assert token == HotspotConfig(zipf_s=1.5).token()


class TestKeyHelpers:
    def test_key_fragment_matches_the_historical_format(self):
        fragment = key_fragment(dict(n=2, r=3, max_fanout=None))
        assert fragment == "n=2|r=3|max_fanout=None"

    def test_key_fragment_uses_enum_names(self):
        from repro.core.models import Construction, MulticastModel

        fragment = key_fragment(
            dict(construction=Construction.MAW_DOMINANT,
                 model=MulticastModel.MSDW)
        )
        assert fragment == "construction=MAW_DOMINANT|model=MSDW"

    def test_workload_fragment_empty_for_uniform(self):
        assert workload_fragment(None) == ""
        assert workload_fragment(UniformConfig().token()) == ""

    def test_workload_fragment_is_canonical_json(self):
        fragment = workload_fragment({"workload": "hotspot", "zipf_s": 1.5})
        assert fragment.startswith("|workload=")
        assert json.loads(fragment.split("=", 1)[1]) == {
            "workload": "hotspot", "zipf_s": 1.5,
        }

    def test_schedule_rng_is_deterministic(self):
        a = schedule_rng("key", 3, 1).random()
        b = schedule_rng("key", 3, 1).random()
        c = schedule_rng("key", 3, 2).random()
        assert a == b != c
