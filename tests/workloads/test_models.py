"""The shipped workload models: determinism, feasibility and shape.

Every workload must produce a well-formed traffic stream (the same
contract ``compile_stream`` assumes: unique setup ids, teardowns of
live connections, feasible endpoints) and must be a pure function of
its RNG stream.  ``uniform`` additionally carries the compatibility
contract of the whole redesign: bit-identical events to the
historical generator for golden seeds.  The non-uniform models get
distribution-shape assertions -- the point of shipping them is that
they are *not* uniform.
"""

from __future__ import annotations

import pytest

from repro.core.models import MulticastModel
from repro.switching.generators import dynamic_traffic
from repro.workloads import (
    HeavyTailFanoutConfig,
    HotspotConfig,
    PoissonErlangConfig,
    UniformConfig,
    workload_class,
    workload_names,
)
from repro.workloads.keys import stream_rng

GOLDEN_SEEDS = (0, 7, 12345)
STEPS = 250

GENERATIVE = [
    UniformConfig(),
    HotspotConfig(zipf_s=1.5),
    HeavyTailFanoutConfig(alpha=0.9),
    PoissonErlangConfig(offered_erlangs=6.0),
]


def draw(config, model, n_ports=9, k=2, seed=0, steps=STEPS, max_fanout=None):
    return list(
        config.events(
            model, n_ports, k,
            steps=steps, rng=stream_rng(seed), max_fanout=max_fanout,
        )
    )


def assert_well_formed(events, model, n_ports, k, max_fanout=None):
    """The stream contract compile_stream and the serial cell assume.

    Input and output endpoints are distinct spaces (a port code names
    an input endpoint on the source side and an output endpoint on the
    destination side), so freedom is tracked per side.
    """
    free_inputs = {code for code in range(n_ports * k)}
    free_outputs = {code for code in range(n_ports * k)}
    live: dict[int, tuple[int, list[int]]] = {}
    for event in events:
        if event.kind == "setup":
            assert event.connection_id not in live
            connection = event.connection
            source = connection.source.port * k + connection.source.wavelength
            ports = [d.port for d in connection.destinations]
            assert len(ports) == len(set(ports)), "duplicate destination port"
            if max_fanout is not None:
                assert len(ports) <= max_fanout
            if model is MulticastModel.MSW:
                assert all(
                    d.wavelength == connection.source.wavelength
                    for d in connection.destinations
                )
            elif model is MulticastModel.MSDW:
                assert len({d.wavelength for d in connection.destinations}) == 1
            outputs = [
                d.port * k + d.wavelength for d in connection.destinations
            ]
            assert source in free_inputs, "input endpoint not free at setup"
            free_inputs.discard(source)
            for code in outputs:
                assert code in free_outputs, "output endpoint not free at setup"
                free_outputs.discard(code)
            live[event.connection_id] = (source, outputs)
        else:
            source, outputs = live.pop(event.connection_id)
            free_inputs.add(source)
            free_outputs.update(outputs)
    assert len(events) > 0


class TestUniformBitIdentity:
    @pytest.mark.parametrize("model", list(MulticastModel), ids=lambda m: m.value)
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    @pytest.mark.parametrize("antithetic", [False, True])
    def test_events_equal_the_legacy_generator(self, model, seed, antithetic):
        legacy = list(
            dynamic_traffic(
                model, 9, 2, steps=STEPS, seed=stream_rng(seed, antithetic)
            )
        )
        fresh = list(
            UniformConfig().events(
                model, 9, 2,
                steps=STEPS, rng=stream_rng(seed, antithetic), max_fanout=None,
            )
        )
        assert fresh == legacy

    def test_max_fanout_passes_through(self):
        legacy = list(
            dynamic_traffic(
                MulticastModel.MAW, 9, 1,
                steps=STEPS, seed=stream_rng(3), max_fanout=2,
            )
        )
        fresh = draw(UniformConfig(), MulticastModel.MAW, 9, 1, seed=3,
                     max_fanout=2)
        assert fresh == legacy


class TestEveryModel:
    @pytest.mark.parametrize("config", GENERATIVE, ids=lambda c: c.workload)
    @pytest.mark.parametrize("model", list(MulticastModel), ids=lambda m: m.value)
    def test_streams_are_well_formed(self, config, model):
        events = draw(config, model)
        assert_well_formed(events, model, 9, 2)

    @pytest.mark.parametrize("config", GENERATIVE, ids=lambda c: c.workload)
    def test_streams_are_deterministic(self, config):
        assert draw(config, MulticastModel.MAW) == draw(
            config, MulticastModel.MAW
        )

    @pytest.mark.parametrize("config", GENERATIVE, ids=lambda c: c.workload)
    def test_max_fanout_is_respected(self, config):
        events = draw(config, MulticastModel.MAW, 12, 1, max_fanout=2)
        assert_well_formed(events, MulticastModel.MAW, 12, 1, max_fanout=2)

    def test_every_registered_generative_model_is_covered(self):
        covered = {config.workload for config in GENERATIVE}
        assert covered == set(workload_names()) - {"trace"}
        for name in covered:
            assert workload_class(name) in {type(c) for c in GENERATIVE}


def setup_events(events):
    return [e for e in events if e.kind == "setup"]


class TestHotspotShape:
    @staticmethod
    def _hot_preference(config, n_ports=12, hot=3, steps=800):
        """P(setup touches a hot port | >=1 hot and >=1 cold port free).

        Conditioning on availability matters: in steady state the hot
        output endpoints are saturated (they are popular!), so the
        *carried* destination mix converges toward uniform -- the skew
        lives in what gets picked when there is a choice.
        """
        events = list(
            config.events(
                MulticastModel.MAW, n_ports, 1,
                steps=steps, rng=stream_rng(0), max_fanout=1,
            )
        )
        free = set(range(n_ports))
        live = {}
        trials = hits = 0
        for event in events:
            if event.kind == "setup":
                ports = [d.port for d in event.connection.destinations]
                hot_free = any(p < hot for p in free)
                cold_free = any(p >= hot for p in free)
                if hot_free and cold_free:
                    trials += 1
                    hits += any(p < hot for p in ports)
                free -= set(ports)
                live[event.connection_id] = ports
            else:
                free.update(live.pop(event.connection_id))
        assert trials > 50
        return hits / trials

    def test_hot_ports_preferred_when_available(self):
        skewed = self._hot_preference(HotspotConfig(zipf_s=2.0,
                                                    hot_fraction=0.25))
        flat = self._hot_preference(UniformConfig())
        assert skewed > flat + 0.1

    def test_differs_from_uniform_with_the_same_stream(self):
        uniform = draw(UniformConfig(), MulticastModel.MAW, 12, 1)
        skewed = draw(HotspotConfig(zipf_s=2.0), MulticastModel.MAW, 12, 1)
        assert uniform != skewed


class TestHeavyTailShape:
    def test_unicast_dominates_unlike_uniform(self):
        # P(F=1) = 1 - 2^-alpha for the truncated Pareto, ~0.5 at
        # alpha=1.1; the uniform draw spreads mass evenly over 1..cap.
        heavy = draw(HeavyTailFanoutConfig(alpha=1.1),
                     MulticastModel.MAW, 16, 1, steps=600)
        flat = draw(UniformConfig(), MulticastModel.MAW, 16, 1, steps=600)

        def unicast_share(events):
            setups = setup_events(events)
            ones = sum(
                1 for e in setups if len(e.connection.destinations) == 1
            )
            return ones / len(setups)

        assert unicast_share(heavy) > unicast_share(flat) + 0.15

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            HeavyTailFanoutConfig(alpha=0.0)


class TestPoissonErlangShape:
    def test_arrivals_are_capped_at_steps(self):
        events = draw(PoissonErlangConfig(offered_erlangs=4.0),
                      MulticastModel.MAW, 9, 1, steps=100)
        setups = setup_events(events)
        assert 0 < len(setups) <= 100

    def test_offered_load_drives_concurrency(self):
        def mean_active(erlangs):
            events = draw(PoissonErlangConfig(offered_erlangs=erlangs),
                          MulticastModel.MAW, 12, 2, steps=400)
            active = 0
            samples = []
            for event in events:
                active += 1 if event.kind == "setup" else -1
                samples.append(active)
            return sum(samples) / len(samples)

        assert mean_active(12.0) > mean_active(1.0) + 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="offered_erlangs"):
            PoissonErlangConfig(offered_erlangs=0.0)
        with pytest.raises(ValueError, match="mean_holding"):
            PoissonErlangConfig(mean_holding=-1.0)


class TestHotspotValidation:
    def test_bounds(self):
        with pytest.raises(ValueError, match="zipf_s"):
            HotspotConfig(zipf_s=0.0)
        with pytest.raises(ValueError, match="hot_fraction"):
            HotspotConfig(hot_fraction=0.0)
        with pytest.raises(ValueError, match="hot_fraction"):
            HotspotConfig(hot_fraction=1.5)
