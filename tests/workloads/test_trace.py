"""Trace recording and replay: the round-trip and its guard rails.

``trace-gen`` writes a stream, ``TraceConfig`` replays it; the
round-trip must be event-for-event identical to running the recorded
workload live.  The loader is the trust boundary -- trace files come
from outside the seed machinery -- so malformed files, infeasible
events and length mismatches must fail loudly with the file position,
and a trace can never satisfy a precision target (one recording has
no fresh replication streams).
"""

from __future__ import annotations

import pytest

from repro import api
from repro.core.models import MulticastModel
from repro.workloads import (
    HotspotConfig,
    TraceConfig,
    UniformConfig,
    generate_trace,
    load_trace,
    write_trace,
)
from repro.workloads.keys import stream_rng

N_PORTS, K, STEPS = 9, 2, 150


def record(tmp_path, name, workload=UniformConfig(), seed=0,
           model=MulticastModel.MAW):
    path = str(tmp_path / name)
    count = generate_trace(
        workload, path, model, N_PORTS, K, steps=STEPS, seed=seed
    )
    return path, count


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["t.jsonl", "t.csv"])
    def test_replay_equals_live_generation(self, tmp_path, name):
        workload = HotspotConfig(zipf_s=1.5)
        path, count = record(tmp_path, name, workload=workload, seed=3)
        live = list(
            workload.events(
                MulticastModel.MAW, N_PORTS, K,
                steps=STEPS, rng=stream_rng(3), max_fanout=None,
            )
        )
        replayed = list(
            TraceConfig(path=path).events(
                MulticastModel.MAW, N_PORTS, K,
                steps=count, rng=stream_rng(99), max_fanout=None,
            )
        )
        assert replayed == live

    def test_write_then_load_is_identity(self, tmp_path):
        path, _ = record(tmp_path, "t.jsonl")
        events = load_trace(path)
        other = str(tmp_path / "copy.csv")
        write_trace(other, events)
        assert load_trace(other) == events

    def test_resolved_steps_defaults_to_the_trace_length(self, tmp_path):
        path, count = record(tmp_path, "t.jsonl")
        config = TraceConfig(path=path)
        assert config.resolved_steps(10_000) == count


class TestGuardRails:
    def test_requires_a_path(self):
        with pytest.raises(ValueError, match="path"):
            TraceConfig()

    def test_overlong_steps_reports_both_counts(self, tmp_path):
        path, count = record(tmp_path, "t.jsonl")
        config = TraceConfig(path=path)
        with pytest.raises(ValueError, match=f"{count} events"):
            list(
                config.events(
                    MulticastModel.MAW, N_PORTS, K,
                    steps=count + 50, rng=stream_rng(0), max_fanout=None,
                )
            )

    def test_malformed_line_reports_the_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "setup"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:"):
            load_trace(str(path))

    def test_teardown_of_unknown_connection_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "teardown", "id": 7}\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:1"):
            load_trace(str(path))

    def test_infeasible_event_rejected_at_replay(self, tmp_path):
        # A legal 9-port recording replayed on a 2-port fabric.
        path, count = record(tmp_path, "t.jsonl")
        config = TraceConfig(path=path)
        with pytest.raises(ValueError):
            list(
                config.events(
                    MulticastModel.MAW, 2, 1,
                    steps=count, rng=stream_rng(0), max_fanout=None,
                )
            )


class TestPrecisionRejection:
    def test_validate_precision_names_the_event_count(self, tmp_path):
        path, count = record(tmp_path, "t.jsonl")
        config = TraceConfig(path=path)
        with pytest.raises(ValueError, match=f"{count} events"):
            config.validate_precision(api.PrecisionConfig(), count)

    def test_api_blocking_rejects_precision_plus_trace(self, tmp_path):
        path, count = record(tmp_path, "t.jsonl")
        with pytest.raises(ValueError, match=f"{count} events"):
            api.blocking(
                3, 3, 2, K,
                model=MulticastModel.MAW,
                traffic=TraceConfig(path=path),
                execution=api.ExecConfig(precision=api.PrecisionConfig()),
            )


class TestIdentity:
    def test_token_is_content_addressed(self, tmp_path):
        path_a, _ = record(tmp_path, "a.jsonl", seed=0)
        path_b, _ = record(tmp_path, "b.jsonl", seed=0)
        path_c, _ = record(tmp_path, "c.jsonl", seed=1)
        token = TraceConfig(path=path_a).token()
        assert token is not None and token["workload"] == "trace"
        # Same content, different path: same digest (the cache key
        # follows the recording, not where it happens to live).
        assert token["digest"] == TraceConfig(path=path_b).token()["digest"]
        assert token["digest"] != TraceConfig(path=path_c).token()["digest"]

    def test_replay_through_the_api_matches_the_recorded_workload(
        self, tmp_path
    ):
        workload = HotspotConfig(zipf_s=1.5, seeds=(5,))
        path = str(tmp_path / "t.jsonl")
        generate_trace(
            workload, path, MulticastModel.MAW, 9, 1, steps=STEPS, seed=5
        )
        live = api.blocking(
            3, 3, 2, 1, model=MulticastModel.MAW,
            traffic=HotspotConfig(zipf_s=1.5, steps=STEPS, seeds=(5,)),
        )
        replayed = api.blocking(
            3, 3, 2, 1, model=MulticastModel.MAW,
            traffic=TraceConfig(path=path),
        )
        assert (replayed.attempts, replayed.blocked) == (
            live.attempts, live.blocked,
        )
