"""Cross-kernel equivalence for every registered workload.

The workload seam sits *above* the admission engine: a workload only
changes which events are drawn, never how they are routed.  So the
bit-identity contract of the kernels must hold per replication for
every registered model -- serial reference network, batched python
backend and the fused (numba array program, interpreted here) backend
must agree on counts *and* on the ``explain_block`` cause dicts.

The second contract is key hygiene: a workload's identity must enter
every cache key, so a warm uniform cache can never answer for
non-uniform traffic (cross-workload cache poisoning).
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.montecarlo import _traffic_key
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import valid_x_range
from repro.engine.fused import FUSED_ENV
from repro.multistage.network import ThreeStageNetwork
from repro.perf.batch import replay_cell
from repro.perf.cache import ResultCache
from repro.workloads import (
    HeavyTailFanoutConfig,
    HotspotConfig,
    PoissonErlangConfig,
    UniformConfig,
)
from repro.workloads.keys import stream_rng

STEPS = 120

WORKLOADS = [
    UniformConfig(),
    HotspotConfig(zipf_s=1.5),
    HeavyTailFanoutConfig(alpha=0.9),
    PoissonErlangConfig(offered_erlangs=6.0),
]


@contextmanager
def fused_interpreted():
    """Force the fused array program's interpreted mode for a block."""
    previous = os.environ.get(FUSED_ENV)
    os.environ[FUSED_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[FUSED_ENV]
        else:
            os.environ[FUSED_ENV] = previous


def serial_cell(n, r, m, k, construction, model, x, seed, workload):
    """The serial reference: counts plus explain_block cause dicts."""
    net = ThreeStageNetwork(
        n, r, m, k, construction=construction, model=model, x=x
    )
    attempts = blocked = 0
    live: dict[int, int] = {}
    dropped: set[int] = set()
    causes = []
    events = workload.events(
        model, n * r, k, steps=STEPS, rng=stream_rng(seed), max_fanout=None
    )
    for event in events:
        if event.kind == "setup":
            attempts += 1
            connection_id = net.try_connect(event.connection)
            if connection_id is None:
                blocked += 1
                causes.append(net.explain_block(event.connection))
                dropped.add(event.connection_id)
            else:
                live[event.connection_id] = connection_id
        else:
            if event.connection_id in dropped:
                dropped.discard(event.connection_id)
                continue
            net.disconnect(live.pop(event.connection_id))
    return attempts, blocked, causes


@st.composite
def configs(draw):
    n = draw(st.integers(2, 3))
    r = draw(st.integers(2, 3))
    k = draw(st.integers(1, 2))
    x = draw(st.integers(1, 2))
    assume(x in valid_x_range(n, r))
    m = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 10_000))
    construction = draw(st.sampled_from(list(Construction)))
    model = draw(st.sampled_from(list(MulticastModel)))
    return n, r, k, x, m, seed, construction, model


class TestEveryWorkloadAgreesAcrossKernels:
    @settings(max_examples=20, deadline=None)
    @given(
        config=configs(),
        workload=st.sampled_from(WORKLOADS),
    )
    def test_serial_batched_and_fused_match(self, config, workload):
        n, r, k, x, m, seed, construction, model = config
        attempts, blocked, causes = serial_cell(
            n, r, m, k, construction, model, x, seed, workload
        )
        batched = replay_cell(
            n, r, m, k, construction=construction, model=model, x=x,
            steps=STEPS, seed=seed, backend="python", record_causes=True,
            workload=workload,
        )
        assert (batched.attempts, batched.blocked) == (attempts, blocked)
        assert list(batched.causes) == causes
        with fused_interpreted():
            fused = replay_cell(
                n, r, m, k, construction=construction, model=model, x=x,
                steps=STEPS, seed=seed, backend="numba", record_causes=True,
                workload=workload,
            )
        assert (fused.attempts, fused.blocked) == (attempts, blocked)
        assert list(fused.causes) == causes


class TestCacheKeyHygiene:
    @staticmethod
    def key(tmp_path, workload):
        return _traffic_key(
            ResultCache(tmp_path / "cache"), 3, 3, 2, 1,
            Construction.MSW_DOMINANT, MulticastModel.MSW, 1,
            100, 0, None, workload,
        )

    def test_uniform_preserves_the_legacy_address(self, tmp_path):
        # Both spellings of "no workload" hit the same warm entries.
        assert self.key(tmp_path, None) == self.key(tmp_path, UniformConfig())

    def test_every_non_uniform_workload_gets_its_own_address(self, tmp_path):
        keys = {self.key(tmp_path, w) for w in WORKLOADS}
        keys.add(self.key(tmp_path, None))
        # uniform + None collapse to one; the other three are distinct.
        assert len(keys) == len(WORKLOADS)

    def test_shape_parameters_are_part_of_the_address(self, tmp_path):
        assert self.key(tmp_path, HotspotConfig(zipf_s=1.5)) != self.key(
            tmp_path, HotspotConfig(zipf_s=1.6)
        )

    def test_warm_uniform_cache_is_never_served_for_hotspot(self, tmp_path):
        from repro import api

        execution = api.ExecConfig(cache_dir=str(tmp_path))
        uniform = api.blocking(
            3, 3, 1, 1, traffic=api.UniformConfig(steps=200, seeds=(0,)),
            execution=execution,
        )
        skewed = api.blocking(
            3, 3, 1, 1,
            traffic=api.HotspotConfig(steps=200, seeds=(0,), zipf_s=2.0),
            execution=execution,
        )
        assert (uniform.attempts, uniform.blocked) != (
            skewed.attempts, skewed.blocked,
        )
        # Re-running warm must reproduce each result exactly.
        assert api.blocking(
            3, 3, 1, 1, traffic=api.UniformConfig(steps=200, seeds=(0,)),
            execution=execution,
        ) == uniform
        assert api.blocking(
            3, 3, 1, 1,
            traffic=api.HotspotConfig(steps=200, seeds=(0,), zipf_s=2.0),
            execution=execution,
        ) == skewed


class TestAdaptiveStreamKeys:
    def test_workload_extends_the_stream_key(self):
        from repro.perf.adaptive import stream_key

        base = stream_key(
            3, 3, 1, Construction.MSW_DOMINANT, MulticastModel.MSW,
            1, 100, None,
        )
        uniform = stream_key(
            3, 3, 1, Construction.MSW_DOMINANT, MulticastModel.MSW,
            1, 100, None, workload=UniformConfig(),
        )
        skewed = stream_key(
            3, 3, 1, Construction.MSW_DOMINANT, MulticastModel.MSW,
            1, 100, None, workload=HotspotConfig(zipf_s=1.5),
        )
        assert uniform == base
        assert skewed != base and "hotspot" in skewed

    def test_adaptive_results_differ_by_workload_but_replay_warm(
        self, tmp_path
    ):
        from repro import api

        def run(traffic):
            return api.blocking(
                3, 3, 2, 1, traffic=traffic,
                execution=api.ExecConfig(
                    cache_dir=str(tmp_path),
                    precision=api.PrecisionConfig(
                        half_width=0.05, max_rounds=3
                    ),
                ),
            )

        uniform = run(api.UniformConfig(steps=150))
        skewed = run(api.HotspotConfig(steps=150, zipf_s=2.0))
        assert run(api.UniformConfig(steps=150)) == uniform
        assert run(api.HotspotConfig(steps=150, zipf_s=2.0)) == skewed
        assert (uniform.attempts, uniform.blocked) != (
            skewed.attempts, skewed.blocked,
        )
