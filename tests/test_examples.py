"""Smoke tests: every example script must run to completion.

Each example asserts its own headline property internally (e.g. the VoD
scenario asserts zero switch-fabric blocking), so a clean exit is a
meaningful check, not just an import test.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(path: pathlib.Path, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )
    assert result.returncode == 0, (
        f"{path.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4


def test_quickstart():
    out = run_example(EXAMPLES_DIR / "quickstart.py")
    assert "Step 4" in out
    assert "every requested endpoint lit up" in out


def test_video_on_demand():
    out = run_example(EXAMPLES_DIR / "video_on_demand.py")
    assert "joins refused by the switch fabric: 0" in out
    assert "most-watched channels" in out


def test_datacenter_interconnect():
    out = run_example(
        EXAMPLES_DIR / "datacenter_interconnect.py",
        "--ports", "64", "--wavelengths", "2",
    )
    assert "recommendations:" in out
    assert "skip MSDW" in out


def test_photonic_testbench():
    out = run_example(EXAMPLES_DIR / "photonic_testbench.py")
    assert "all figure constructions verified" in out
    assert "BLOCKED" in out  # the Fig. 10 MSW-dominant outcome


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_have_docstrings(path):
    source = path.read_text()
    assert source.lstrip().startswith(('"""', '#!')), path.name
    assert '"""' in source


def test_bounds_explorer():
    out = run_example(EXAMPLES_DIR / "bounds_explorer.py")
    assert "exact strict threshold  : m = 3" in out
    assert "corrected MSW-dominant" in out
