"""Tests for the repro.api typed facade."""
