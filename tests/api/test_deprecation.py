"""Deprecation shims: the old kwargs signatures warn but keep working,
and nothing reached through the new facade calls them."""

from __future__ import annotations

import warnings

import pytest

from repro import api
from repro.analysis.montecarlo import blocking_probability, blocking_vs_m
from repro.multistage.exhaustive import exact_minimal_m


class TestShimsWarn:
    def test_blocking_probability_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="repro.api.blocking"):
            estimate = blocking_probability(2, 2, 2, 1, x=1, steps=50, seeds=(0,))
        assert estimate.attempts > 0

    def test_blocking_vs_m_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            estimates = blocking_vs_m(2, 2, 1, [1, 2], x=1, steps=50, seeds=(0,))
        assert [e.m for e in estimates] == [1, 2]

    def test_exact_minimal_m_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="repro.api.exact_m"):
            result = exact_minimal_m(2, 2, 1, x=1, m_max=5)
        assert result.m_exact == 3

    def test_warning_points_at_the_caller(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            blocking_probability(2, 2, 2, 1, x=1, steps=20, seeds=(0,))
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert deprecations and deprecations[0].filename == __file__

    def test_traffic_config_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="repro.api.UniformConfig"):
            legacy = api.TrafficConfig(steps=50, seeds=(0, 1))
        estimate = api.blocking(2, 2, 2, 1, x=1, traffic=legacy)
        fresh = api.blocking(2, 2, 2, 1, x=1,
                             traffic=api.UniformConfig(steps=50, seeds=(0, 1)))
        assert estimate == fresh

    def test_traffic_config_warning_points_at_the_caller(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.TrafficConfig(steps=20, seeds=(0,))
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert deprecations and deprecations[0].filename == __file__


class TestFacadeIsClean:
    """The new entry points never route through the deprecated shims."""

    @pytest.mark.parametrize("call", [
        lambda: api.blocking(2, 2, 2, 1, x=1,
                             traffic=api.UniformConfig(steps=30, seeds=(0,))),
        lambda: api.sweep(2, 2, 1, [1, 2], x=1,
                          traffic=api.UniformConfig(steps=30, seeds=(0,))),
        lambda: api.sweep(2, 2, 1, [1, 2], x=1,
                          traffic=api.UniformConfig(
                              steps=30, seeds=(0,), adversarial=True,
                              adversary_seeds=3)),
        lambda: api.blocking(2, 2, 2, 1, x=1,
                             traffic=api.HotspotConfig(steps=30, seeds=(0,))),
        lambda: api.blocking(2, 2, 2, 1, x=1,
                             traffic=api.HeavyTailFanoutConfig(
                                 steps=30, seeds=(0,))),
        lambda: api.exact_m(2, 2, 1, x=1, m_max=4),
    ])
    def test_no_deprecation_warning_escapes(self, call):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            call()

    def test_cli_blocking_is_clean(self, capsys):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["blocking", "--n", "2", "--r", "2", "--k", "1",
                         "--m-max", "2"]) == 0
        assert "Blocking probability" in capsys.readouterr().out

    def test_cli_exact_is_clean(self, capsys):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["exact", "--n", "2", "--r", "2", "--k", "1"]) == 0
        assert "exact" in capsys.readouterr().out
