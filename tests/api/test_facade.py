"""The typed facade: equivalence with the legacy entry points."""

from __future__ import annotations

import dataclasses

import pytest

from repro import api
from repro.analysis.montecarlo import blocking_probability, blocking_vs_m
from repro.core.models import Construction, MulticastModel
from repro.multistage.exhaustive import exact_minimal_m


def strip_meta(estimate):
    return (estimate.m, estimate.attempts, estimate.blocked, estimate.probability)


class TestFrozenConfigs:
    @pytest.mark.parametrize("config", [
        api.UniformConfig(), api.ExecConfig(), api.SearchConfig()])
    def test_configs_are_frozen(self, config):
        field = dataclasses.fields(config)[0].name
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(config, field, None)

    def test_exec_config_cache(self, tmp_path):
        assert api.ExecConfig().cache() is None
        cache = api.ExecConfig(cache_dir=str(tmp_path)).cache()
        assert cache is not None

    def test_search_config_applied_pins_kernel(self):
        from repro.multistage.routing import get_routing_kernel

        ambient = get_routing_kernel()
        other = "reference" if ambient == "bitmask" else "bitmask"
        with api.SearchConfig(kernel=other).applied():
            assert get_routing_kernel() == other
        assert get_routing_kernel() == ambient
        with api.SearchConfig().applied():
            assert get_routing_kernel() == ambient


class TestBlockingEquivalence:
    def test_matches_legacy_call_bit_for_bit(self):
        new = api.blocking(3, 3, 2, 1, x=1,
                           traffic=api.UniformConfig(steps=200, seeds=(0, 1)))
        with pytest.warns(DeprecationWarning):
            old = blocking_probability(3, 3, 2, 1, x=1, steps=200, seeds=(0, 1))
        assert strip_meta(new) == strip_meta(old)

    def test_default_steps_match_legacy_default(self):
        new = api.blocking(2, 2, 2, 1, x=1,
                           traffic=api.UniformConfig(seeds=(0,)))
        with pytest.warns(DeprecationWarning):
            old = blocking_probability(2, 2, 2, 1, x=1, seeds=(0,))
        assert strip_meta(new) == strip_meta(old)


class TestSweepEquivalence:
    def test_random_traffic_curve_matches_legacy(self):
        traffic = api.UniformConfig(steps=150, seeds=(0, 1))
        new = api.sweep(3, 3, 1, [1, 2, 3], x=1, traffic=traffic)
        with pytest.warns(DeprecationWarning):
            old = blocking_vs_m(3, 3, 1, [1, 2, 3], x=1, steps=150, seeds=(0, 1))
        assert [strip_meta(e) for e in new] == [strip_meta(e) for e in old]

    def test_max_fanout_is_honored(self):
        capped = api.sweep(2, 2, 1, [2], x=1,
                           traffic=api.UniformConfig(
                               steps=150, seeds=(0,), max_fanout=1))
        with pytest.warns(DeprecationWarning):
            legacy = blocking_vs_m(2, 2, 1, [2], x=1, steps=150, seeds=(0,),
                                   max_fanout=1)
        assert strip_meta(capped[0]) == strip_meta(legacy[0])

    def test_alternate_construction_and_model(self):
        traffic = api.UniformConfig(steps=100, seeds=(0,))
        new = api.sweep(2, 2, 2, [1, 2], construction=Construction.MAW_DOMINANT,
                        model=MulticastModel.MAW, x=1, traffic=traffic)
        with pytest.warns(DeprecationWarning):
            old = blocking_vs_m(2, 2, 2, [1, 2],
                                construction=Construction.MAW_DOMINANT,
                                model=MulticastModel.MAW, x=1,
                                steps=100, seeds=(0,))
        assert [strip_meta(e) for e in new] == [strip_meta(e) for e in old]


class TestExactEquivalence:
    def test_verdicts_match_legacy(self):
        new = api.exact_m(2, 2, 1, x=1, m_max=5)
        with pytest.warns(DeprecationWarning):
            old = exact_minimal_m(2, 2, 1, x=1, m_max=5)
        assert new.m_exact == old.m_exact == 3
        assert [(p.m, p.blockable) for p in new.per_m] == [
            (p.m, p.blockable) for p in old.per_m]

    def test_uncanonicalized_search_config(self):
        reference = api.exact_m(2, 2, 1, x=1, m_max=4,
                                search=api.SearchConfig(canonicalize=False))
        canonical = api.exact_m(2, 2, 1, x=1, m_max=4)
        assert reference.m_exact == canonical.m_exact

    def test_cache_round_trip(self, tmp_path):
        execution = api.ExecConfig(cache_dir=str(tmp_path))
        first = api.exact_m(2, 2, 1, x=1, m_max=4, execution=execution)
        second = api.exact_m(2, 2, 1, x=1, m_max=4, execution=execution)
        assert first.m_exact == second.m_exact
        assert list(tmp_path.iterdir())  # entries were stored
