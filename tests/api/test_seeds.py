"""Adversary-seed derivation: keyed by the whole configuration.

The legacy ``blocking_vs_m`` reseeded the adversary from ``m`` alone,
so every configuration sharing an ``m`` value replayed the identical
adversary stream.  The facade mixes a traffic key (topology,
construction, model, x) into the derivation; the deprecated shim keeps
the old schedule so golden values stay reproducible.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.montecarlo import _adversary_seeds, _adversary_traffic_key
from repro.core.models import Construction, MulticastModel


KEY_A = _adversary_traffic_key(
    3, 3, 1, Construction.MSW_DOMINANT, MulticastModel.MSW, 1)
KEY_B = _adversary_traffic_key(
    4, 2, 2, Construction.MSW_DOMINANT, MulticastModel.MSW, 1)


class TestLegacySchedule:
    def test_m_only_reseeding_is_preserved(self):
        rng = random.Random(5)
        assert _adversary_seeds(5, 8) == [rng.randrange(10**9) for _ in range(8)]

    def test_legacy_streams_collide_across_configs(self):
        """The defect the fix addresses: only ``m`` matters."""
        assert _adversary_seeds(5, 8) == _adversary_seeds(5, 8, None)


class TestKeyedSchedule:
    def test_deterministic_for_a_fixed_key(self):
        assert _adversary_seeds(5, 8, KEY_A) == _adversary_seeds(5, 8, KEY_A)

    def test_differs_across_traffic_keys(self):
        assert _adversary_seeds(5, 8, KEY_A) != _adversary_seeds(5, 8, KEY_B)

    def test_differs_from_legacy_schedule(self):
        assert _adversary_seeds(5, 8, KEY_A) != _adversary_seeds(5, 8)

    def test_still_varies_with_m(self):
        assert _adversary_seeds(4, 8, KEY_A) != _adversary_seeds(5, 8, KEY_A)

    def test_key_covers_every_traffic_dimension(self):
        for field in ("n=3", "r=3", "k=1", "construction=MSW_DOMINANT",
                      "model=MSW", "x=1"):
            assert field in KEY_A


class TestEndToEnd:
    @pytest.mark.parametrize("construction", [
        Construction.MSW_DOMINANT, Construction.MAW_DOMINANT])
    def test_adversarial_sweep_remains_deterministic(self, construction):
        from repro import api

        traffic = api.UniformConfig(steps=80, seeds=(0,), adversarial=True,
                                    adversary_seeds=4)
        first = api.sweep(2, 2, 1, [1, 2], construction=construction, x=1,
                          traffic=traffic)
        second = api.sweep(2, 2, 1, [1, 2], construction=construction, x=1,
                           traffic=traffic)
        assert [(e.m, e.blocked) for e in first] == [
            (e.m, e.blocked) for e in second]
