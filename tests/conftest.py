"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.core.models import Construction, MulticastModel

# A single moderate profile: the property tests here are CPU-bound
# combinatorics, not I/O, so the default deadline is both unnecessary
# and flaky under load.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(params=list(MulticastModel), ids=lambda m: m.value)
def model(request: pytest.FixtureRequest) -> MulticastModel:
    """Each multicast model in turn."""
    return request.param


@pytest.fixture(params=list(Construction), ids=lambda c: c.value)
def construction(request: pytest.FixtureRequest) -> Construction:
    """Each multistage construction method in turn."""
    return request.param


#: (N, k) pairs small enough for exhaustive assignment enumeration.
ENUMERABLE_SIZES = [(1, 1), (2, 1), (3, 1), (4, 1), (1, 2), (2, 2), (1, 3), (2, 3), (3, 2)]

#: (n, r, k) topologies small enough for routing fuzz tests.
FUZZ_TOPOLOGIES = [(2, 2, 1), (2, 3, 1), (3, 2, 2), (2, 3, 2), (3, 3, 2), (2, 2, 3)]
