"""Golden-value regression tests.

Exact numbers computed by this reproduction and cross-checked by hand
or by independent code paths, pinned so any future change that shifts
them is caught immediately.  (Shape-level properties live in the other
test modules; these are the literal values.)
"""

from __future__ import annotations

import pytest

from repro.core.capacity import any_multicast_capacity, full_multicast_capacity
from repro.core.corrected import min_middle_switches_corrected
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import (
    min_middle_switches_maw_dominant,
    min_middle_switches_msw_dominant,
    multistage_cost,
    optimal_design,
)
from repro.core.unicast import clos_unicast_minimum

MSW = MulticastModel.MSW
MSDW = MulticastModel.MSDW
MAW = MulticastModel.MAW


class TestCapacityGolden:
    """Table 1 capacities for the worked sizes."""

    @pytest.mark.parametrize(
        "model,n_ports,k,full,any_",
        [
            (MSW, 2, 2, 16, 81),
            (MSDW, 2, 2, 84, 325),
            (MAW, 2, 2, 144, 441),
            (MSW, 4, 2, 65536, 390625),
            (MSDW, 4, 2, 2217320, 9264041),
            (MAW, 4, 2, 9834496, 28398241),
            (MSW, 3, 2, 729, 4096),
            (MAW, 3, 2, 27000, 79507),
        ],
    )
    def test_values(self, model, n_ports, k, full, any_):
        assert full_multicast_capacity(model, n_ports, k) == full
        assert any_multicast_capacity(model, n_ports, k) == any_

    def test_maw_8_4_exact(self):
        """P(32, 4)^8 = (32*31*30*29)^8."""
        assert full_multicast_capacity(MAW, 8, 4) == (32 * 31 * 30 * 29) ** 8


class TestBoundGolden:
    """Theorem 1/2 and corrected minima on a fixed grid."""

    @pytest.mark.parametrize(
        "n,r,x,expected",
        [
            (2, 2, 1, 4),
            (2, 3, 1, 5),
            (3, 3, 1, 9),
            (3, 3, 2, 8),
            (8, 8, 2, 34),
            (8, 8, 3, 36),
            (16, 16, 3, 83),
        ],
    )
    def test_theorem1(self, n, r, x, expected):
        assert min_middle_switches_msw_dominant(n, r, 1, x=x) == expected

    @pytest.mark.parametrize(
        "n,r,k,x,expected",
        [
            (3, 3, 2, 1, 9),
            (3, 3, 2, 2, 9),
            (16, 16, 4, 3, 85),
        ],
    )
    def test_theorem2(self, n, r, k, x, expected):
        assert min_middle_switches_maw_dominant(n, r, k, x=x) == expected

    @pytest.mark.parametrize(
        "n,r,k,x,expected",
        [
            (2, 3, 2, 1, 11),
            (2, 3, 3, 1, 17),
            (3, 4, 2, 1, 23),
            (8, 16, 4, 2, 139),
        ],
    )
    def test_corrected_maw_model(self, n, r, k, x, expected):
        assert min_middle_switches_corrected(
            n, r, k, Construction.MSW_DOMINANT, MAW, x=x
        ) == expected

    @pytest.mark.parametrize("n,expected", [(2, 3), (3, 5), (8, 15)])
    def test_clos_unicast(self, n, expected):
        assert clos_unicast_minimum(n) == expected


class TestCostGolden:
    def test_stage_sums(self):
        cost = multistage_cost(16, 16, 83, 4)
        assert cost.crosspoints == 4 * 83 * 16 * (2 * 16 + 16) == 254976

    def test_msw_design_256_4(self):
        design = optimal_design(256, 4)
        assert (design.n, design.r, design.m, design.x) == (16, 16, 83, 3)
        assert design.cost.crosspoints == 254976

    def test_maw_design_1024_4_corrected(self):
        design = optimal_design(1024, 4, MAW)
        assert (design.n, design.r, design.m, design.x) == (16, 64, 217, 6)
        assert design.cost.crosspoints == 7999488
        assert design.cost.converters == 4096

    def test_maw_design_1024_4_paper(self):
        design = optimal_design(1024, 4, MAW, use_paper_bound=True)
        assert (design.n, design.r, design.m, design.x) == (16, 64, 103, 4)
        assert design.cost.crosspoints == 3796992


class TestScenarioGolden:
    def test_gap_example(self):
        from repro.multistage.adversary import demonstrate_theorem1_gap

        result = demonstrate_theorem1_gap(2, 3, 2, MAW)
        assert (result.m_paper, result.m_corrected) == (5, 11)

    def test_exact_threshold_smallest(self):
        from repro.multistage.exhaustive import exact_minimal_m

        assert exact_minimal_m(2, 2, 1, x=1, m_max=5).m_exact == 3

    def test_recursive_65536(self):
        from repro.multistage.recursive import best_recursive_design

        design = best_recursive_design(65536, 2)
        assert design.stages == 5
        assert design.crosspoints == 693231616
