"""Parallel sweeps must be bit-identical to their serial counterparts.

The sweep engine's contract is that ``jobs`` only changes wall time,
never results: every cell owns its RNG stream and the merge is keyed,
so the assertions here compare full result structures for equality.
"""

from __future__ import annotations

from repro.analysis.montecarlo import blocking_probability, blocking_vs_m
from repro.multistage.exhaustive import exact_minimal_m


def _key(estimates):
    return [(e.m, e.attempts, e.blocked) for e in estimates]


class TestBlockingProbabilityDeterminism:
    def test_jobs_do_not_change_the_estimate(self):
        serial = blocking_probability(3, 3, 2, 1, x=1, steps=300, seeds=(0, 1, 2))
        parallel = blocking_probability(
            3, 3, 2, 1, x=1, steps=300, seeds=(0, 1, 2), jobs=2
        )
        assert (serial.attempts, serial.blocked) == (
            parallel.attempts,
            parallel.blocked,
        )

    def test_each_seed_owns_one_stream(self):
        """Pooled totals equal the sum of single-seed runs: the per-seed
        streams are independent, so pooling is pure addition."""
        pooled = blocking_probability(3, 3, 2, 1, x=1, steps=300, seeds=(4, 5))
        singles = [
            blocking_probability(3, 3, 2, 1, x=1, steps=300, seeds=(s,))
            for s in (4, 5)
        ]
        assert pooled.attempts == sum(e.attempts for e in singles)
        assert pooled.blocked == sum(e.blocked for e in singles)


class TestBlockingVsMEquivalence:
    def test_serial_vs_parallel_curve(self):
        args = (3, 3, 1, [1, 2, 3, 4])
        kwargs = dict(x=1, steps=300, seeds=(0, 1))
        assert _key(blocking_vs_m(*args, **kwargs)) == _key(
            blocking_vs_m(*args, jobs=2, **kwargs)
        )

    def test_serial_vs_parallel_adversarial_curve(self):
        args = (3, 3, 1, [2, 4])
        kwargs = dict(x=1, steps=150, seeds=(0,), adversarial=True, adversary_seeds=6)
        assert _key(blocking_vs_m(*args, **kwargs)) == _key(
            blocking_vs_m(*args, jobs=2, **kwargs)
        )


class TestExactMinimalMEquivalence:
    def test_serial_vs_parallel_scan(self):
        serial = exact_minimal_m(2, 2, 1, x=1, m_max=6, jobs=1)
        parallel = exact_minimal_m(2, 2, 1, x=1, m_max=6, jobs=2)
        assert serial == parallel
