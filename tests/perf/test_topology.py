"""Cross-fabric properties of the topology zoo.

The fabric seam's observable contract, stated as properties rather than
pinned numbers (those live in ``tests/engine/test_fabrics.py``):

* the **crossbar is a live zero-blocking oracle**: it admits 100% of
  any legal stream from *every* registered workload model, on every
  backend -- a single blocked event anywhere is a seam bug;
* **attempts are fabric-independent**: every fabric replays the same
  compiled stream, so the attempt count never varies across fabrics
  (only admission outcomes may);
* the **crossbar is the blocking floor**: no fabric blocks less on the
  identical stream;
* the **backends agree per fabric**: python, numpy and the fused kernel
  (interpreted when numba is absent) produce identical cells;
* the **API surface round-trips**: ``FabricConfig`` validates eagerly,
  ``api.blocking``/``api.sweep`` accept both spellings, and adversarial
  probing refuses non-Clos fabrics instead of silently probing the
  wrong topology.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.models import Construction, MulticastModel
from repro.engine.fabrics import fabric_names, get_fabric
from repro.engine.fused import FUSED_ENV, NUMBA_AVAILABLE
from repro.perf.batch import simulate_batch
from repro.workloads import generate_trace, workload_names

C = Construction.MSW_DOMINANT
MSW = MulticastModel.MSW

#: the generative workloads (everything but 'trace', which needs a
#: recorded file and is exercised separately below)
GENERATIVE = tuple(
    name for name in workload_names() if name != "trace"
)


def _workload(name: str | None, steps: int, seeds: tuple[int, ...]):
    if name is None or name == "uniform":
        # None exercises the legacy no-workload spelling.
        return None
    return api.make_workload(name, steps=steps, seeds=seeds)


@settings(max_examples=20, deadline=None)
@given(
    workload=st.sampled_from((None,) + GENERATIVE),
    model=st.sampled_from(list(MulticastModel)),
    m=st.integers(1, 5),
    seed=st.integers(0, 50),
)
def test_crossbar_admits_every_legal_stream(workload, model, m, seed):
    steps = 150
    cells = simulate_batch(
        3, 3, 2, C, model, 1, steps, None, seed, (m,), "python",
        False, _workload(workload, steps, (seed,)), "crossbar",
    )
    [(_, (attempts, blocked))] = cells
    assert blocked == 0
    assert attempts > 0


@settings(max_examples=15, deadline=None)
@given(
    workload=st.sampled_from((None,) + GENERATIVE),
    m=st.integers(1, 5),
    seed=st.integers(0, 50),
)
def test_crossbar_is_the_blocking_floor(workload, m, seed):
    steps = 150
    config = _workload(workload, steps, (seed,))
    per_fabric = {
        fabric: simulate_batch(
            3, 3, 2, C, MSW, 1, steps, None, seed, (m,), "python",
            False, config, fabric,
        )[0][1]
        for fabric in fabric_names()
    }
    attempts = {cell[0] for cell in per_fabric.values()}
    # Shared compiled stream: the attempt count is fabric-independent.
    assert len(attempts) == 1
    floor = per_fabric["crossbar"][1]
    assert floor == 0
    for fabric, (_, blocked) in per_fabric.items():
        assert blocked >= floor


def test_crossbar_admits_recorded_traces(tmp_path):
    path = tmp_path / "trace.jsonl"
    steps = 200
    count = generate_trace(
        api.make_workload("hotspot", steps=steps, seeds=(0,), zipf_s=1.5),
        str(path), MSW, 9, 2, steps=steps, seed=0, max_fanout=None,
    )
    assert count > 0
    replay = api.make_workload("trace", path=str(path), steps=steps, seeds=(0,))
    cells = simulate_batch(
        3, 3, 2, C, MSW, 1, steps, None, 0, (1, 3), "python",
        False, replay, "crossbar",
    )
    for _, (attempts, blocked) in cells:
        assert attempts > 0
        assert blocked == 0


@pytest.mark.parametrize("fabric", ["clos", "awg_clos", "crossbar"])
def test_backends_agree_per_fabric(fabric):
    pytest.importorskip("numpy")
    m_values = (1, 2, 3, 4)
    forced = not NUMBA_AVAILABLE
    if forced:
        os.environ[FUSED_ENV] = "1"
    try:
        runs = {
            backend: [
                simulate_batch(
                    3, 3, 2, C, MSW, 1, 200, None, seed, m_values,
                    backend, False, None, fabric,
                )
                for seed in (0, 1)
            ]
            for backend in ("python", "numpy", "numba")
        }
    finally:
        if forced:
            del os.environ[FUSED_ENV]
    assert runs["python"] == runs["numpy"] == runs["numba"]


# -- the API surface ---------------------------------------------------------


def test_fabric_config_validates_eagerly():
    assert api.FabricConfig().name == "clos"
    assert api.FabricConfig("awg_clos").name == "awg_clos"
    with pytest.raises(ValueError, match="unknown fabric"):
        api.FabricConfig("mesh")
    with pytest.raises(ValueError, match="unknown fabric"):
        api.blocking(3, 3, 2, 2, fabric="mesh")


def test_api_blocking_accepts_both_spellings():
    traffic = api.UniformConfig(steps=150, seeds=(0,))
    by_name = api.blocking(
        3, 3, 2, 2, model=MSW, traffic=traffic, fabric="crossbar"
    )
    by_config = api.blocking(
        3, 3, 2, 2, model=MSW, traffic=traffic,
        fabric=api.FabricConfig("crossbar"),
    )
    assert by_name.blocked == by_config.blocked == 0
    assert by_name.probability == 0.0


def test_api_sweep_threads_fabric():
    traffic = api.UniformConfig(steps=150, seeds=(0,))
    clos = api.sweep(3, 3, 2, [1, 2], model=MSW, traffic=traffic)
    awg = api.sweep(
        3, 3, 2, [1, 2], model=MSW, traffic=traffic, fabric="awg_clos"
    )
    assert [e.attempts for e in clos] == [e.attempts for e in awg]
    assert all(
        a.blocked >= c.blocked for a, c in zip(awg, clos)
    )


def test_adversarial_probing_is_clos_only():
    traffic = api.UniformConfig(steps=100, seeds=(0,), adversarial=True)
    with pytest.raises(ValueError, match="Clos fabric only"):
        api.sweep(
            3, 3, 2, [1, 2], model=MSW, traffic=traffic, fabric="awg_clos"
        )


def test_fabric_names_exported():
    assert api.fabric_names() == ["awg_clos", "clos", "crossbar"]
    assert "FabricConfig" in api.__all__
