"""Tests for the content-addressed sweep-result cache."""

from __future__ import annotations

import shutil
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.analysis.montecarlo import blocking_probability, blocking_vs_m
from repro.core.models import Construction, MulticastModel
from repro.multistage.exhaustive import exact_minimal_m
from repro.multistage.routing import routing_kernel
from repro.perf.cache import CODE_VERSION, ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _hammer(directory, worker, writes, max_bytes):
    """One concurrent writer: interleaved puts and lookups on a shared dir.

    Module-level so worker processes can unpickle it.  Returns
    ``(bad_values, stats)`` -- ``bad_values`` counts lookups that hit
    but returned the wrong payload, which must never happen no matter
    how writes and prunes interleave.
    """
    cache = ResultCache(directory, max_bytes=max_bytes)
    bad = 0
    for i in range(writes):
        # Writers deliberately collide on half the key space.
        shared = i % (writes // 2)
        key = cache.key("concurrent", dict(cell=shared))
        cache.put(key, ("payload", shared))
        hit, value = cache.lookup(key)
        if hit and value != ("payload", shared):
            bad += 1
        # And probe a peer's keyspace while they write it.
        other_key = cache.key("concurrent", dict(cell=(shared + 1) % (writes // 2)))
        hit, value = cache.lookup(other_key)
        if hit and not (value[0] == "payload" and isinstance(value[1], int)):
            bad += 1
    return bad, cache.stats.as_dict()


class TestKeys:
    def test_deterministic(self, cache):
        params = dict(n=2, r=2, m=3, k=1, seed=0)
        assert cache.key("cell", params) == cache.key("cell", params)

    def test_sensitive_to_namespace_and_params(self, cache):
        params = dict(n=2, r=2, m=3, k=1, seed=0)
        assert cache.key("cell", params) != cache.key("other", params)
        assert cache.key("cell", params) != cache.key(
            "cell", dict(params, seed=1)
        )

    def test_enums_are_stable_key_material(self, cache):
        a = cache.key("cell", dict(model=MulticastModel.MSW))
        b = cache.key("cell", dict(model=MulticastModel.MAW))
        c = cache.key(
            "cell", dict(model=MulticastModel.MSW, extra=Construction.MSW_DOMINANT)
        )
        assert len({a, b, c}) == 3

    def test_unstable_key_material_rejected(self, cache):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="stable"):
            cache.key("cell", dict(thing=Opaque()))

    def test_code_version_bump_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, code_version=CODE_VERSION)
        new = ResultCache(tmp_path, code_version=CODE_VERSION + ".bumped")
        params = dict(n=2, r=2, m=3, k=1)
        key_old = old.key("cell", params)
        old.put(key_old, "stale")
        key_new = new.key("cell", params)
        assert key_new != key_old
        hit, _ = new.lookup(key_new)
        assert not hit  # the bumped version cannot see the old entry

    def test_kernel_id_separates_entries(self, cache):
        params = dict(n=2, r=2, m=3, k=1)
        assert cache.key("cell", params, kernel="bitmask") != cache.key(
            "cell", params, kernel="reference"
        )

    def test_kernel_defaults_to_active_kernel(self, cache):
        params = dict(n=2, r=2, m=3, k=1)
        with routing_kernel("bitmask"):
            under_bitmask = cache.key("cell", params)
        with routing_kernel("reference"):
            under_reference = cache.key("cell", params)
        assert under_bitmask != under_reference
        with routing_kernel("bitmask"):
            assert cache.key("cell", params, kernel="bitmask") == under_bitmask


class TestStorage:
    def test_roundtrip(self, cache):
        key = cache.key("cell", dict(seed=0))
        cache.put(key, (12, [3, 4], {"a": 1}))
        assert cache.get(key) == (12, [3, 4], {"a": 1})
        assert key in cache
        assert len(cache) == 1

    def test_cached_none_is_a_hit(self, cache):
        """A stored None (e.g. 'adversary found no witness') is not a miss."""
        key = cache.key("adversary", dict(seed=7))
        cache.put(key, None)
        hit, value = cache.lookup(key)
        assert hit and value is None

    def test_miss(self, cache):
        hit, value = cache.lookup(cache.key("cell", dict(seed=99)))
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_corrupted_entry_recovered(self, cache):
        key = cache.key("cell", dict(seed=0))
        cache.put(key, "good")
        path = cache._path(key)
        path.write_bytes(b"\x80garbage that will not unpickle")
        hit, _ = cache.lookup(key)
        assert not hit
        assert cache.stats.corrupt == 1
        assert not path.exists()  # discarded, ready for a clean rewrite
        cache.put(key, "rewritten")
        assert cache.get(key) == "rewritten"

    def test_truncated_entry_recovered(self, cache):
        key = cache.key("cell", dict(seed=0))
        cache.put(key, list(range(1000)))
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:10])
        hit, _ = cache.lookup(key)
        assert not hit and cache.stats.corrupt == 1

    def test_atomic_writes_leave_no_temp_files(self, cache):
        for seed in range(5):
            cache.put(cache.key("cell", dict(seed=seed)), seed)
        leftovers = [
            p for p in cache.directory.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []
        assert len(cache) == 5

    def test_clear(self, cache):
        for seed in range(3):
            cache.put(cache.key("cell", dict(seed=seed)), seed)
        assert cache.clear() == 3
        assert len(cache) == 0


class TestBoundedGrowth:
    @staticmethod
    def _stamp(cache, key, age):
        """Pin an entry's mtime so LRU order is deterministic."""
        import os

        os.utime(cache._path(key), ns=(age * 10**9, age * 10**9))

    def test_unbounded_by_default(self, cache):
        assert cache.max_bytes is None
        for seed in range(20):
            cache.put(cache.key("cell", dict(seed=seed)), bytes(4096))
        assert len(cache) == 20
        assert cache.stats.evictions == 0

    def test_put_prunes_least_recently_used(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        keys = [cache.key("cell", dict(seed=seed)) for seed in range(3)]
        for age, key in enumerate(keys):
            cache.put(key, "x")
            self._stamp(cache, key, age + 1)
        # Budget of one byte: each write keeps itself, evicting elders.
        assert len(cache) == 1
        assert keys[2] in cache
        assert cache.stats.evictions == 2

    def test_lookup_refreshes_recency(self, tmp_path):
        entry = bytes(100)
        cache = ResultCache(tmp_path, max_bytes=350)
        keys = [cache.key("cell", dict(seed=seed)) for seed in range(3)]
        for age, key in enumerate(keys):
            cache.put(key, entry)
            self._stamp(cache, key, age + 1)
        hit, _ = cache.lookup(keys[0])  # oldest entry becomes hottest
        assert hit
        newest = cache.key("cell", dict(seed=99))
        cache.put(newest, entry)  # over budget: one eviction needed
        assert keys[0] in cache  # spared by the lookup
        assert keys[1] not in cache  # now the least recently used
        assert keys[2] in cache and newest in cache

    def test_pruned_entry_recovers_as_miss(self, tmp_path):
        """The prune-and-recover contract: eviction only costs a recompute."""
        cache = ResultCache(tmp_path, max_bytes=1)
        first = cache.key("cell", dict(seed=0))
        second = cache.key("cell", dict(seed=1))
        cache.put(first, "first")
        self._stamp(cache, first, 1)
        cache.put(second, "second")
        hit, _ = cache.lookup(first)
        assert not hit  # pruned -> plain miss, not an error
        cache.put(first, "first again")  # recompute-and-store path
        assert cache.get(first) == "first again"

    def test_newest_write_survives_even_over_budget(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        key = cache.key("cell", dict(seed=0))
        cache.put(key, bytes(10_000))
        assert cache.get(key) == bytes(10_000)

    def test_bounded_sweep_stays_correct(self, tmp_path):
        config = dict(steps=120, seeds=(0, 1))
        cache = ResultCache(tmp_path, max_bytes=64)  # roughly one entry
        bounded = blocking_vs_m(2, 2, 1, [1, 2, 3], cache=cache, **config)
        nocache = blocking_vs_m(2, 2, 1, [1, 2, 3], **config)
        assert bounded == nocache
        assert cache.stats.evictions > 0
        assert cache.total_bytes() <= 64

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=0)


class TestConcurrentWriters:
    def test_concurrent_bounded_writers_roundtrip(self, tmp_path):
        """Many processes share one bounded cache without corruption.

        Every lookup that hits must return exactly the payload some
        writer stored -- torn writes, stampeding prunes or half-deleted
        entries would surface as a wrong value or an unpickling error.
        """
        directory = str(tmp_path / "shared")
        workers, writes = 4, 40
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    _hammer,
                    [directory] * workers,
                    range(workers),
                    [writes] * workers,
                    [4096] * workers,
                )
            )
        assert [bad for bad, _ in results] == [0] * workers
        # The directory is still a healthy cache afterwards.
        survivor = ResultCache(directory, max_bytes=4096)
        leftovers = [
            p for p in survivor.directory.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []
        for i in range(writes // 2):
            hit, value = survivor.lookup(
                survivor.key("concurrent", dict(cell=i))
            )
            if hit:  # pruned entries are legal; wrong values are not
                assert value == ("payload", i)

    def test_put_recreates_removed_directory(self, tmp_path):
        """A peer wiping the cache directory costs a recompute, not a crash."""
        cache = ResultCache(tmp_path / "wiped")
        key = cache.key("cell", dict(seed=0))
        cache.put(key, "before")
        shutil.rmtree(cache.directory)
        cache.put(key, "after")  # must recreate the directory and succeed
        assert cache.get(key) == "after"

    def test_skipped_prune_is_caught_up_by_next_store(self, tmp_path, monkeypatch):
        """If a prune is skipped (peer holds the lock), a later store prunes.

        Simulated by disabling one store's prune, then verifying the
        following store brings the cache back under budget.
        """
        cache = ResultCache(tmp_path, max_bytes=150)
        monkeypatch.setattr(ResultCache, "_prune", lambda self, keep: None)
        for seed in range(4):
            cache.put(cache.key("cell", dict(seed=seed)), bytes(100))
        assert cache.total_bytes() > 150  # nothing pruned while "locked out"
        monkeypatch.undo()
        newest = cache.key("cell", dict(seed=99))
        cache.put(newest, bytes(100))
        assert cache.total_bytes() <= 150
        assert newest in cache


class TestSweepIntegration:
    CONFIG = dict(steps=120, seeds=(0, 1))

    def test_blocking_probability_warm_equals_cold(self, cache):
        cold = blocking_probability(2, 2, 2, 1, cache=cache, **self.CONFIG)
        stored = cache.stats.stores
        warm = blocking_probability(2, 2, 2, 1, cache=cache, **self.CONFIG)
        nocache = blocking_probability(2, 2, 2, 1, **self.CONFIG)
        assert warm == cold == nocache
        assert stored == len(self.CONFIG["seeds"])
        assert cache.stats.hits == len(self.CONFIG["seeds"])

    def test_blocking_vs_m_resumed_sweep(self, cache):
        m_values = [1, 2, 3]
        full = blocking_vs_m(2, 2, 1, m_values, cache=cache, **self.CONFIG)
        # Simulate an interrupted sweep: drop a third of the entries.
        entries = sorted(cache.directory.glob("*.pkl"))
        for path in entries[:: 3]:
            path.unlink()
        resumed = blocking_vs_m(2, 2, 1, m_values, cache=cache, **self.CONFIG)
        nocache = blocking_vs_m(2, 2, 1, m_values, **self.CONFIG)
        assert resumed == full == nocache

    def test_adversarial_curve_cached(self, cache):
        m_values = [3, 4]
        kwargs = dict(adversarial=True, adversary_seeds=3, **self.CONFIG)
        cold = blocking_vs_m(2, 2, 1, m_values, cache=cache, **kwargs)
        warm = blocking_vs_m(2, 2, 1, m_values, cache=cache, **kwargs)
        assert warm == cold

    def test_exact_minimal_m_cached(self, cache):
        cold = exact_minimal_m(2, 2, 1, x=1, m_max=6, cache=cache)
        stored = cache.stats.stores
        warm = exact_minimal_m(2, 2, 1, x=1, m_max=6, cache=cache)
        assert stored == 3  # m = 1, 2, 3 -- the scan stops at the threshold
        assert warm.m_exact == cold.m_exact == 3
        assert [p.blockable for p in warm.per_m] == [
            p.blockable for p in cold.per_m
        ]

    def test_parallel_sweep_shares_the_cache(self, cache):
        serial = blocking_vs_m(
            2, 2, 1, [1, 2], jobs=1, cache=cache, **self.CONFIG
        )
        hits_before = cache.stats.hits
        parallel = blocking_vs_m(
            2, 2, 1, [1, 2], jobs=2, cache=cache, **self.CONFIG
        )
        assert parallel == serial
        # Every cell of the second run came from the cache.
        assert cache.stats.hits - hits_before == 2 * len(self.CONFIG["seeds"])
