"""Tests for the precision-targeted adaptive sweep engine."""

from __future__ import annotations

import math

import pytest

from repro.analysis.montecarlo import AdaptiveInfo, BlockingEstimate
from repro.core.models import Construction, MulticastModel
from repro.multistage.routing import routing_kernel
from repro.perf.adaptive import (
    PrecisionConfig,
    adaptive_blocking,
    adaptive_sweep,
    round_specs,
    stream_key,
)
from repro.perf.cache import ResultCache
from repro.switching.generators import AntitheticRandom, stream_rng

CONFIG = dict(
    construction=Construction.MSW_DOMINANT,
    model=MulticastModel.MSW,
    steps=120,
)
QUICK = PrecisionConfig(half_width=0.05, min_rounds=2, max_rounds=8)


def _identity(estimates):
    return [(e.m, e.attempts, e.blocked) for e in estimates]


class TestPrecisionConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="half_width"):
            PrecisionConfig(half_width=0.0)
        with pytest.raises(ValueError, match="level"):
            PrecisionConfig(level=1.0)
        with pytest.raises(ValueError, match="pairs_per_round"):
            PrecisionConfig(pairs_per_round=0)
        with pytest.raises(ValueError, match="min_rounds"):
            PrecisionConfig(min_rounds=0)
        with pytest.raises(ValueError, match="max_rounds"):
            PrecisionConfig(min_rounds=5, max_rounds=4)
        with pytest.raises(ValueError, match="zero_half_width"):
            PrecisionConfig(zero_half_width=-1.0)

    def test_replications_per_round(self):
        assert PrecisionConfig(pairs_per_round=3).replications_per_round() == 6
        assert (
            PrecisionConfig(pairs_per_round=3, antithetic=False)
            .replications_per_round() == 3
        )

    def test_absolute_convergence(self):
        precision = PrecisionConfig(half_width=0.05)
        wide = BlockingEstimate(
            n=3, r=3, m=2, k=1,
            construction=Construction.MSW_DOMINANT, model=MulticastModel.MSW,
            x=1, attempts=20, blocked=10,
        )
        narrow = BlockingEstimate(
            n=3, r=3, m=2, k=1,
            construction=Construction.MSW_DOMINANT, model=MulticastModel.MSW,
            x=1, attempts=20_000, blocked=10_000,
        )
        assert not precision.converged(wide)
        assert precision.converged(narrow)

    def test_relative_convergence_falls_back_at_zero(self):
        precision = PrecisionConfig(
            half_width=0.1, relative=True, zero_half_width=0.01
        )
        zero_wide = BlockingEstimate(
            n=3, r=3, m=9, k=1,
            construction=Construction.MSW_DOMINANT, model=MulticastModel.MSW,
            x=1, attempts=50, blocked=0,
        )
        zero_narrow = BlockingEstimate(
            n=3, r=3, m=9, k=1,
            construction=Construction.MSW_DOMINANT, model=MulticastModel.MSW,
            x=1, attempts=50_000, blocked=0,
        )
        assert not precision.converged(zero_wide)
        assert precision.converged(zero_narrow)

    def test_no_attempts_never_converged(self):
        empty = BlockingEstimate(
            n=3, r=3, m=2, k=1,
            construction=Construction.MSW_DOMINANT, model=MulticastModel.MSW,
            x=1, attempts=0, blocked=0,
        )
        assert not PrecisionConfig(half_width=0.5).converged(empty)


class TestSchedule:
    """The seed schedule: deterministic, key-sensitive, stratified."""

    KEY = stream_key(
        3, 3, 2, Construction.MSW_DOMINANT, MulticastModel.MSW, 1, 120, None
    )

    def test_specs_are_pure(self):
        assert round_specs(self.KEY, 3, QUICK) == round_specs(self.KEY, 3, QUICK)

    def test_rounds_do_not_repeat_seeds(self):
        seeds = set()
        for round_index in range(10):
            for spec in round_specs(self.KEY, round_index, QUICK):
                if not spec.antithetic:
                    assert spec.seed not in seeds
                    seeds.add(spec.seed)

    def test_stream_key_excludes_m_but_nothing_else(self):
        """Common random numbers across the curve; the PR 3 lesson for
        everything else -- every configuration dimension must change the
        schedule."""
        base = dict(
            n=3, r=3, k=2, construction=Construction.MSW_DOMINANT,
            model=MulticastModel.MSW, x=1, steps=120, max_fanout=None,
        )
        key = stream_key(*base.values())
        assert "m=" not in key.replace("max_fanout", "")
        variations = [
            dict(base, n=4),
            dict(base, r=4),
            dict(base, k=3),
            dict(base, construction=Construction.MAW_DOMINANT),
            dict(base, model=MulticastModel.MAW),
            dict(base, x=2),
            dict(base, steps=121),
            dict(base, max_fanout=2),
        ]
        keys = {stream_key(*v.values()) for v in variations}
        assert len(keys) == len(variations)
        assert key not in keys

    def test_stratified_seeds_come_from_disjoint_strata(self):
        precision = PrecisionConfig(pairs_per_round=4)
        width = (1 << 62) // 4
        for round_index in range(5):
            plain = [
                s for s in round_specs(self.KEY, round_index, precision)
                if not s.antithetic
            ]
            for stratum, spec in enumerate(plain):
                assert stratum * width <= spec.seed < (stratum + 1) * width

    def test_antithetic_twin_shares_the_seed(self):
        specs = round_specs(self.KEY, 0, QUICK)
        pairs = list(zip(specs[::2], specs[1::2]))
        for plain, mirror in pairs:
            assert plain.seed == mirror.seed
            assert (plain.antithetic, mirror.antithetic) == (False, True)


class TestAntitheticStream:
    def test_marginals_mirrored(self):
        plain = stream_rng(42)
        mirror = stream_rng(42, antithetic=True)
        assert isinstance(mirror, AntitheticRandom)
        for _ in range(100):
            u, v = plain.random(), mirror.random()
            assert math.isclose(u + v, 1.0) or (u == v == 0.0)

    def test_getrandbits_complemented(self):
        plain = stream_rng(7)
        mirror = stream_rng(7, antithetic=True)
        for k in (1, 8, 31, 64):
            assert plain.getrandbits(k) + mirror.getrandbits(k) == (1 << k) - 1

    def test_random_stays_in_unit_interval(self):
        mirror = stream_rng(0, antithetic=True)
        draws = [mirror.random() for _ in range(1000)]
        assert all(0.0 <= u < 1.0 for u in draws)

    def test_antithetic_replication_differs_but_is_plausible(self):
        plain = adaptive_sweep(
            3, 3, 2, [2],
            precision=PrecisionConfig(
                half_width=0.5, antithetic=False, min_rounds=1, max_rounds=1
            ),
            **CONFIG,
        )[0]
        paired = adaptive_sweep(
            3, 3, 2, [2],
            precision=PrecisionConfig(
                half_width=0.5, min_rounds=1, max_rounds=1
            ),
            **CONFIG,
        )[0]
        # The paired run folds the mirrored streams in on top.
        assert paired.attempts > plain.attempts


class TestAdaptiveSweep:
    def test_stops_at_the_target(self):
        estimates = adaptive_sweep(3, 3, 2, [1, 2, 3, 4], precision=QUICK, **CONFIG)
        for e in estimates:
            assert e.adaptive is not None
            assert e.adaptive.converged
            assert e.half_width(QUICK.level) <= QUICK.half_width
            assert e.adaptive.rounds >= QUICK.min_rounds
            assert e.adaptive.events == e.adaptive.replications * CONFIG["steps"]

    def test_effort_concentrates_at_the_knee(self):
        tight = PrecisionConfig(half_width=0.02, min_rounds=2, max_rounds=32)
        estimates = adaptive_sweep(3, 3, 1, [1, 4], precision=tight, **CONFIG)
        knee, tail = estimates
        assert knee.probability > tail.probability
        assert knee.adaptive.rounds > tail.adaptive.rounds

    def test_max_rounds_caps_and_flags(self):
        impossible = PrecisionConfig(
            half_width=1e-6, min_rounds=1, max_rounds=2
        )
        estimate = adaptive_blocking(3, 3, 2, 2, precision=impossible, **CONFIG)
        assert estimate.adaptive.rounds == 2
        assert not estimate.adaptive.converged

    def test_batched_kernel_bit_identical_to_serial(self):
        serial = adaptive_sweep(3, 3, 2, [1, 2, 3], precision=QUICK, **CONFIG)
        with routing_kernel("batched"):
            batched = adaptive_sweep(3, 3, 2, [1, 2, 3], precision=QUICK, **CONFIG)
        assert _identity(batched) == _identity(serial)

    def test_parallel_bit_identical_to_serial(self):
        serial = adaptive_sweep(3, 3, 2, [1, 2], precision=QUICK, **CONFIG)
        threaded = adaptive_sweep(
            3, 3, 2, [1, 2], precision=QUICK, jobs=2, executor="thread", **CONFIG
        )
        assert _identity(threaded) == _identity(serial)

    def test_single_cell_matches_sweep_cell(self):
        """Pooled estimates from split rounds equal the single-run pool:
        the same schedule drives both, so the cell of a sweep and a
        lone query are the same numbers."""
        alone = adaptive_blocking(3, 3, 2, 2, steps=120, precision=QUICK)
        swept = adaptive_sweep(3, 3, 2, [1, 2, 3], precision=QUICK, **CONFIG)
        cell = next(e for e in swept if e.m == 2)
        assert (alone.attempts, alone.blocked) == (cell.attempts, cell.blocked)

    def test_adaptive_info_round_trips_json(self):
        estimate = adaptive_blocking(3, 3, 2, 2, precision=QUICK, **CONFIG)
        back = BlockingEstimate.from_json(estimate.to_json())
        assert back == estimate
        assert back.adaptive == estimate.adaptive
        assert isinstance(back.adaptive, AdaptiveInfo)

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError, match="steps"):
            adaptive_sweep(
                3, 3, 2, [1], construction=Construction.MSW_DOMINANT,
                model=MulticastModel.MSW, steps=0,
            )


class TestResume:
    def test_interrupted_sweep_resumes_bit_identically(self, tmp_path):
        cold = adaptive_sweep(3, 3, 2, [1, 2, 3], precision=QUICK, **CONFIG)
        # "Interrupt" by running only the first rounds, persisting them.
        cache = ResultCache(tmp_path)
        first = PrecisionConfig(half_width=0.05, min_rounds=2, max_rounds=2)
        adaptive_sweep(3, 3, 2, [1, 2, 3], precision=first, cache=cache, **CONFIG)
        stores = cache.stats.stores
        assert stores > 0
        resumed = adaptive_sweep(
            3, 3, 2, [1, 2, 3], precision=QUICK, cache=cache, **CONFIG
        )
        assert _identity(resumed) == _identity(cold)
        assert cache.stats.hits >= stores  # the warm rounds replayed

    def test_fully_warm_sweep_dispatches_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = adaptive_sweep(3, 3, 2, [1, 2], precision=QUICK, cache=cache, **CONFIG)
        stores = cache.stats.stores
        warm = adaptive_sweep(3, 3, 2, [1, 2], precision=QUICK, cache=cache, **CONFIG)
        assert _identity(warm) == _identity(cold)
        assert cache.stats.stores == stores  # nothing recomputed

    def test_tighter_target_reuses_warm_rounds(self, tmp_path):
        cache = ResultCache(tmp_path)
        loose = PrecisionConfig(half_width=0.10, min_rounds=2, max_rounds=8)
        adaptive_sweep(3, 3, 2, [1, 2], precision=loose, cache=cache, **CONFIG)
        hits_before = cache.stats.hits
        tight = PrecisionConfig(half_width=0.05, min_rounds=2, max_rounds=8)
        tightened = adaptive_sweep(
            3, 3, 2, [1, 2], precision=tight, cache=cache, **CONFIG
        )
        nocache = adaptive_sweep(3, 3, 2, [1, 2], precision=tight, **CONFIG)
        assert _identity(tightened) == _identity(nocache)
        assert cache.stats.hits > hits_before  # loose rounds were reused

    def test_schedule_shape_change_does_not_alias(self, tmp_path):
        cache = ResultCache(tmp_path)
        adaptive_sweep(3, 3, 2, [2], precision=QUICK, cache=cache, **CONFIG)
        other_shape = PrecisionConfig(
            half_width=0.05, min_rounds=2, max_rounds=8, pairs_per_round=3
        )
        hits_before = cache.stats.hits
        reshaped = adaptive_sweep(
            3, 3, 2, [2], precision=other_shape, cache=cache, **CONFIG
        )
        nocache = adaptive_sweep(3, 3, 2, [2], precision=other_shape, **CONFIG)
        assert _identity(reshaped) == _identity(nocache)
        assert cache.stats.hits == hits_before  # different shape, no aliasing


class TestApiIntegration:
    def test_exec_config_precision_routes_to_adaptive(self):
        from repro import api

        direct = adaptive_sweep(3, 3, 2, [1, 2], precision=QUICK, **CONFIG)
        via_api = api.sweep(
            3, 3, 2, [1, 2],
            traffic=api.UniformConfig(steps=120),
            execution=api.ExecConfig(precision=QUICK),
        )
        assert _identity(via_api) == _identity(direct)
        assert all(e.adaptive is not None for e in via_api)

    def test_blocking_precision_single_cell(self):
        from repro import api

        estimate = api.blocking(
            3, 3, 2, 2,
            traffic=api.UniformConfig(steps=120),
            execution=api.ExecConfig(precision=QUICK),
        )
        assert estimate.adaptive is not None
        assert estimate.meta is not None

    def test_adversarial_precision_rejected(self):
        from repro import api

        with pytest.raises(ValueError, match="adversarial"):
            api.sweep(
                3, 3, 2, [1, 2],
                traffic=api.UniformConfig(adversarial=True),
                execution=api.ExecConfig(precision=QUICK),
            )
