"""Equivalence and property tests for the lockstep batch engine.

The ``batched`` kernel's whole contract is *bit-identity*: every
``(m, seed)`` cell it produces -- counts, causes, cache entries, obs
counters -- must equal the serial bitmask simulator's.  These tests
pin that contract on randomized configurations and on both state
backends.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import api, obs
from repro.analysis.montecarlo import _traffic_cell
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import valid_x_range
from repro.engine.fused import FUSED_ENV
from repro.multistage.network import ThreeStageNetwork
from repro.multistage.routing import routing_kernel
from repro.perf.batch import (
    BACKEND_ENV,
    available_backends,
    compile_stream,
    replay_cell,
    resolve_backend,
    simulate_batch,
)
from repro.perf.cache import ResultCache
from repro.switching.generators import dynamic_traffic

BACKENDS = available_backends()
STEPS = 150


@contextmanager
def fused_interpreted():
    """Force the fused backend's interpreted mode for a block.

    Makes ``numba`` available even on hosts without numba installed
    (the kernel runs uncompiled over the same arrays), which is how
    the three-way suites always exercise the fused array program.
    Plain ``os.environ`` juggling instead of monkeypatch because
    hypothesis forbids function-scoped fixtures under ``@given``.
    """
    previous = os.environ.get(FUSED_ENV)
    os.environ[FUSED_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[FUSED_ENV]
        else:
            os.environ[FUSED_ENV] = previous


def serial_cell_with_causes(n, r, m, k, construction, model, x, steps, seed):
    """The serial simulator's ``(attempts, blocked, causes)`` ground truth."""
    rng = random.Random(seed)
    net = ThreeStageNetwork(
        n, r, m, k, construction=construction, model=model, x=x
    )
    attempts = blocked = 0
    live: dict[int, int] = {}
    dropped: set[int] = set()
    causes = []
    for event in dynamic_traffic(model, n * r, k, steps=steps, seed=rng):
        if event.kind == "setup":
            attempts += 1
            connection_id = net.try_connect(event.connection)
            if connection_id is None:
                blocked += 1
                causes.append(net.explain_block(event.connection))
                dropped.add(event.connection_id)
            else:
                live[event.connection_id] = connection_id
        else:
            if event.connection_id in dropped:
                dropped.discard(event.connection_id)
                continue
            net.disconnect(live.pop(event.connection_id))
    return attempts, blocked, causes


@st.composite
def configs(draw):
    n = draw(st.integers(2, 4))
    r = draw(st.integers(2, 4))
    k = draw(st.integers(1, 3))
    x = draw(st.integers(1, 3))
    assume(x in valid_x_range(n, r))
    m = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 10_000))
    construction = draw(st.sampled_from(list(Construction)))
    model = draw(st.sampled_from(list(MulticastModel)))
    return n, r, k, x, m, seed, construction, model


class TestBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(config=configs(), backend=st.sampled_from(BACKENDS))
    def test_counts_and_causes_equal_serial(self, config, backend):
        n, r, k, x, m, seed, construction, model = config
        attempts, blocked, causes = serial_cell_with_causes(
            n, r, m, k, construction, model, x, STEPS, seed
        )
        outcome = replay_cell(
            n, r, m, k, construction=construction, model=model, x=x,
            steps=STEPS, seed=seed, backend=backend, record_causes=True,
        )
        assert (outcome.attempts, outcome.blocked) == (attempts, blocked)
        assert list(outcome.causes) == causes

    @settings(max_examples=15, deadline=None)
    @given(config=configs())
    def test_backends_agree(self, config):
        n, r, k, x, m, seed, construction, model = config
        outcomes = [
            replay_cell(
                n, r, m, k, construction=construction, model=model, x=x,
                steps=STEPS, seed=seed, backend=backend, record_causes=True,
            )
            for backend in BACKENDS
        ]
        assert len({(o.attempts, o.blocked) for o in outcomes}) == 1
        assert len({repr(o.causes) for o in outcomes}) == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_whole_batch_equals_per_cell_serial(self, backend):
        """One lockstep batch covers the m column bit for bit."""
        n, r, k, x, seed = 3, 3, 2, 1, 0
        m_values = list(range(1, 9))
        for construction in Construction:
            for model in MulticastModel:
                batch = dict(
                    simulate_batch(
                        n, r, k, construction, model, x, 300, None, seed,
                        m_values, backend,
                    )
                )
                for m in m_values:
                    assert batch[m] == _traffic_cell(
                        n, r, m, k, construction, model, x, 300, seed, None
                    )

    def test_max_fanout_respected(self):
        n, r, k, x, seed = 3, 4, 2, 2, 1
        for m in (2, 3):
            assert replay_cell(
                n, r, m, k, x=x, steps=200, seed=seed, max_fanout=2,
            ).blocked == _traffic_cell(
                n, r, m, k, Construction.MSW_DOMINANT, MulticastModel.MSW,
                x, 200, seed, 2,
            )[1]


@pytest.mark.skipif(
    "numpy" not in BACKENDS, reason="fused backend needs numpy"
)
class TestThreeWayIdentity:
    """python vs numpy vs numba on the same cells (satellite contract)."""

    @settings(max_examples=20, deadline=None)
    @given(config=configs())
    def test_counts_and_causes_agree(self, config):
        n, r, k, x, m, seed, construction, model = config
        with fused_interpreted():
            backends = available_backends()
            assert {"python", "numpy", "numba"} <= set(backends)
            outcomes = [
                replay_cell(
                    n, r, m, k, construction=construction, model=model, x=x,
                    steps=STEPS, seed=seed, backend=backend,
                    record_causes=True,
                )
                for backend in ("python", "numpy", "numba")
            ]
            assert len({(o.attempts, o.blocked) for o in outcomes}) == 1
            assert len({repr(o.causes) for o in outcomes}) == 1

    @pytest.mark.parametrize("construction", list(Construction))
    @pytest.mark.parametrize("model", list(MulticastModel))
    def test_fused_batch_equals_python_batch(self, construction, model):
        n, r, k, x, seed = 3, 3, 2, 1, 0
        m_values = tuple(range(1, 9))
        with fused_interpreted():
            python = simulate_batch(
                n, r, k, construction, model, x, 300, None, seed,
                m_values, "python",
            )
            fused = simulate_batch(
                n, r, k, construction, model, x, 300, None, seed,
                m_values, "numba",
            )
        assert fused == python


class TestStreamCompilation:
    def test_stream_is_m_independent(self):
        """The compiled ops depend on the traffic config, never on m."""
        ops = compile_stream(MulticastModel.MSDW, 3, 3, 2, 200, seed=4)
        again = compile_stream(MulticastModel.MSDW, 3, 3, 2, 200, seed=4)
        assert ops == again
        assert any(tag == 1 for tag, *_ in ops)
        assert any(tag == 0 for tag, *_ in ops)

    def test_ops_mirror_generator_events(self):
        model, n, r, k = MulticastModel.MAW, 2, 3, 2
        ops = compile_stream(model, n, r, k, 120, seed=9)
        events = list(
            dynamic_traffic(model, n * r, k, steps=120, seed=random.Random(9))
        )
        assert len(ops) == len(events)
        for op, event in zip(ops, events):
            tag, cid, g, sw, dest_mask = op
            assert tag == (1 if event.kind == "setup" else 0)
            assert cid == event.connection_id
            assert g == event.connection.source.port // n
            assert sw == event.connection.source.wavelength
            if tag:
                expected = 0
                for destination in event.connection.destinations:
                    expected |= 1 << (destination.port // n)
                assert dest_mask == expected


class TestBackendResolution:
    def test_auto_resolves_to_python(self):
        if "numba" in available_backends():
            pytest.skip("numba installed: auto legitimately prefers it")
        assert resolve_backend("auto", m_max=8, r=4, k=2) == "python"

    @pytest.mark.skipif(
        "numpy" not in BACKENDS, reason="fused backend needs numpy"
    )
    def test_auto_prefers_numba_over_python(self):
        with fused_interpreted():
            assert resolve_backend("auto", m_max=8, r=4, k=2) == "numba"
            # ... at any plane width, now that the word gate is lifted.
            assert resolve_backend("auto", m_max=100, r=4, k=2) == "numba"

    def test_env_python_beats_numba_preference(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        with fused_interpreted():
            assert resolve_backend("auto", m_max=8, r=4, k=2) == "python"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend("auto", m_max=8, r=4, k=2) == "python"
        if "numpy" in BACKENDS:
            monkeypatch.setenv(BACKEND_ENV, "numpy")
            assert resolve_backend("auto", m_max=8, r=4, k=2) == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown batch backend"):
            resolve_backend("fortran", m_max=8, r=4, k=2)

    @pytest.mark.skipif("numpy" not in BACKENDS, reason="numpy not installed")
    def test_numpy_accepts_wide_planes(self):
        # The int64 word gate is lifted: wide fabrics resolve to the
        # multi-word numpy planes instead of erroring.
        assert resolve_backend("numpy", m_max=100, r=4, k=2) == "numpy"

    @pytest.mark.skipif("numpy" in BACKENDS, reason="numpy is installed")
    def test_numpy_missing_rejected(self):
        with pytest.raises(ValueError, match="not installed"):
            resolve_backend("numpy", m_max=8, r=4, k=2)

    def test_illegal_x_rejected_like_the_network(self):
        with pytest.raises(ValueError, match="outside the legal range"):
            replay_cell(2, 2, 3, 1, x=5, steps=50, seed=0)


class TestApiIntegration:
    TRAFFIC = api.UniformConfig(steps=200, seeds=(0, 1, 2))

    def sweep(self, kernel, **kwargs):
        return api.sweep(
            3, 3, 2, [1, 2, 3, 4],
            traffic=self.TRAFFIC,
            search=api.SearchConfig(kernel=kernel),
            **kwargs,
        )

    def test_sweep_matches_bitmask(self):
        bitmask = self.sweep("bitmask")
        batched = self.sweep("batched")
        assert [
            (e.m, e.attempts, e.blocked) for e in bitmask
        ] == [(e.m, e.attempts, e.blocked) for e in batched]

    def test_batch_cap_never_changes_results(self):
        uncapped = self.sweep("batched")
        for cap in (1, 2, 16):
            capped = self.sweep(
                "batched", execution=api.ExecConfig(batch=cap)
            )
            assert capped == uncapped

    def test_blocking_matches_bitmask(self):
        bitmask = api.blocking(
            3, 4, 3, 2, x=2, traffic=self.TRAFFIC,
            search=api.SearchConfig(kernel="bitmask"),
        )
        batched = api.blocking(
            3, 4, 3, 2, x=2, traffic=self.TRAFFIC,
            search=api.SearchConfig(kernel="batched"),
        )
        assert (bitmask.attempts, bitmask.blocked) == (
            batched.attempts, batched.blocked,
        )
        assert batched.meta is not None and batched.meta.kernel == "batched"

    def test_adversarial_sweep_matches_bitmask(self):
        traffic = api.UniformConfig(steps=150, seeds=(0, 1), adversarial=True)
        bitmask = api.sweep(
            2, 2, 1, [2, 3, 4], traffic=traffic,
            search=api.SearchConfig(kernel="bitmask"),
        )
        batched = api.sweep(
            2, 2, 1, [2, 3, 4], traffic=traffic,
            search=api.SearchConfig(kernel="batched"),
        )
        assert [(e.attempts, e.blocked) for e in bitmask] == [
            (e.attempts, e.blocked) for e in batched
        ]

    def test_obs_counters_merge_to_serial_totals(self):
        """The acceptance contract: batched counters == serial bitmask's.

        Compared over the simulation namespaces (``mc.*``, ``net.*``);
        the orchestration counters (``sweep.*``) legitimately differ --
        a batch is one work unit where serial runs one per cell.
        """

        def counters(kernel):
            with obs.capture() as run:
                self.sweep(kernel)
            return {
                name: value
                for name, value in run.metrics.snapshot()["counters"].items()
                if name.startswith(("mc.", "net."))
            }

        serial = counters("bitmask")
        batched = counters("batched")
        assert batched == serial
        assert batched["mc.cells"] == 12  # 4 m-values x 3 seeds
        assert batched["net.admit.blocked"] > 0
        assert any(name.startswith("net.block.cause.") for name in batched)


class TestCacheIntegration:
    CONFIG = dict(steps=150, seeds=(0, 1))

    def sweep(self, kernel, cache_dir, batch=None):
        return api.sweep(
            2, 2, 1, [1, 2, 3],
            traffic=api.UniformConfig(**self.CONFIG),
            execution=api.ExecConfig(cache_dir=str(cache_dir), batch=batch),
            search=api.SearchConfig(kernel=kernel),
        )

    def test_batched_sweep_is_cached_per_cell(self, tmp_path):
        cold = self.sweep("batched", tmp_path)
        cache = ResultCache(tmp_path)
        assert len(cache) == 6  # 3 m-values x 2 seeds, one entry each
        warm = self.sweep("batched", tmp_path)
        assert warm == cold
        # A second run served every cell from the cache: sliced work
        # units see nothing left to simulate either.
        resliced = self.sweep("batched", tmp_path, batch=1)
        assert resliced == cold

    def test_kernel_tag_keeps_pipelines_separate(self, tmp_path):
        self.sweep("bitmask", tmp_path)
        entries_after_bitmask = len(ResultCache(tmp_path))
        self.sweep("batched", tmp_path)
        # The batched run cannot alias the bitmask entries (kernel is
        # part of every key), so it stores its own.
        assert len(ResultCache(tmp_path)) == 2 * entries_after_bitmask

    def test_partially_warm_batched_sweep(self, tmp_path):
        full = self.sweep("batched", tmp_path)
        cache = ResultCache(tmp_path)
        victims = sorted(cache.directory.glob("*.pkl"))[::2]
        for path in victims:
            path.unlink()
        resumed = self.sweep("batched", tmp_path)
        assert resumed == full


class TestObsGuard:
    def test_engine_records_nothing_while_disabled(self):
        obs.reset()
        assert not obs.enabled()
        simulate_batch(
            2, 2, 1, Construction.MSW_DOMINANT, MulticastModel.MSW, 1,
            100, None, 0, (1, 2),
        )
        assert obs.REGISTRY.snapshot()["counters"] == {}
