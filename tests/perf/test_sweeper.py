"""Tests for the deterministic parallel sweep engine."""

from __future__ import annotations

import pytest

from repro.perf.sweeper import ParallelSweeper, SweepResult, WorkUnit, resolve_jobs, sweep


def square(value: int) -> int:
    return value * value


def combine(a: int, b: int, *, offset: int = 0) -> int:
    return a * 100 + b + offset


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_none_and_nonpositive_mean_all_cpus(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)
        assert resolve_jobs(-3) == resolve_jobs(None)


class TestSerialRun:
    def test_results_in_input_order(self):
        units = [WorkUnit(unit_id=i, fn=square, args=(i,)) for i in (3, 1, 2)]
        results = ParallelSweeper(1).run(units)
        assert [r.unit_id for r in results] == [3, 1, 2]
        assert [r.value for r in results] == [9, 1, 4]

    def test_timing_captured(self):
        [result] = ParallelSweeper(1).run([WorkUnit(unit_id=0, fn=square, args=(4,))])
        assert isinstance(result, SweepResult)
        assert result.seconds >= 0.0

    def test_duplicate_ids_rejected(self):
        units = [
            WorkUnit(unit_id=0, fn=square, args=(1,)),
            WorkUnit(unit_id=0, fn=square, args=(2,)),
        ]
        with pytest.raises(ValueError, match="unique"):
            ParallelSweeper(1).run(units)

    def test_kwargs_forwarded(self):
        [result] = ParallelSweeper(1).run(
            [WorkUnit(unit_id="c", fn=combine, args=(2, 3), kwargs={"offset": 7})]
        )
        assert result.value == 210

    def test_run_keyed(self):
        units = [WorkUnit(unit_id=f"u{i}", fn=square, args=(i,)) for i in range(4)]
        keyed = ParallelSweeper(1).run_keyed(units)
        assert keyed["u3"].value == 9
        assert set(keyed) == {"u0", "u1", "u2", "u3"}


class TestParallelRun:
    def test_parallel_matches_serial(self):
        units = [WorkUnit(unit_id=i, fn=square, args=(i,)) for i in range(20)]
        serial = ParallelSweeper(1).run(units)
        parallel = ParallelSweeper(2).run(units)
        assert [r.unit_id for r in parallel] == [r.unit_id for r in serial]
        assert [r.value for r in parallel] == [r.value for r in serial]

    def test_explicit_chunk_size(self):
        units = [WorkUnit(unit_id=i, fn=square, args=(i,)) for i in range(10)]
        results = ParallelSweeper(2, chunk_size=3).run(units)
        assert [r.value for r in results] == [i * i for i in range(10)]

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelSweeper(2, chunk_size=0)

    def test_single_unit_runs_inline(self):
        [result] = ParallelSweeper(4).run([WorkUnit(unit_id=0, fn=square, args=(5,))])
        assert result.value == 25


class TestConvenience:
    def test_map_preserves_order(self):
        values = ParallelSweeper(1).map(combine, [(1, 2), (3, 4)], offset=1)
        assert values == [103, 305]

    def test_sweep_serial_and_parallel_agree(self):
        argtuples = [(i,) for i in range(12)]
        assert sweep(square, argtuples, jobs=1) == sweep(square, argtuples, jobs=2)
