"""Tests for the deterministic parallel sweep engine."""

from __future__ import annotations

import pytest

import repro.perf.sweeper as sweeper_module
from repro.perf.cache import ResultCache
from repro.perf.sweeper import (
    ParallelSweeper,
    SweepResult,
    WorkUnit,
    last_plan,
    resolve_jobs,
    sweep,
)


def square(value: int) -> int:
    return value * value


def combine(a: int, b: int, *, offset: int = 0) -> int:
    return a * 100 + b + offset


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_none_and_nonpositive_mean_all_cpus(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)
        assert resolve_jobs(-3) == resolve_jobs(None)

    def test_auto_means_all_cpus(self):
        assert resolve_jobs("auto") == resolve_jobs(None)

    def test_other_strings_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            resolve_jobs("fast")


class TestSerialRun:
    def test_results_in_input_order(self):
        units = [WorkUnit(unit_id=i, fn=square, args=(i,)) for i in (3, 1, 2)]
        results = ParallelSweeper(1).run(units)
        assert [r.unit_id for r in results] == [3, 1, 2]
        assert [r.value for r in results] == [9, 1, 4]

    def test_timing_captured(self):
        [result] = ParallelSweeper(1).run([WorkUnit(unit_id=0, fn=square, args=(4,))])
        assert isinstance(result, SweepResult)
        assert result.seconds >= 0.0

    def test_duplicate_ids_rejected(self):
        units = [
            WorkUnit(unit_id=0, fn=square, args=(1,)),
            WorkUnit(unit_id=0, fn=square, args=(2,)),
        ]
        with pytest.raises(ValueError, match="unique"):
            ParallelSweeper(1).run(units)

    def test_kwargs_forwarded(self):
        [result] = ParallelSweeper(1).run(
            [WorkUnit(unit_id="c", fn=combine, args=(2, 3), kwargs={"offset": 7})]
        )
        assert result.value == 210

    def test_run_keyed(self):
        units = [WorkUnit(unit_id=f"u{i}", fn=square, args=(i,)) for i in range(4)]
        keyed = ParallelSweeper(1).run_keyed(units)
        assert keyed["u3"].value == 9
        assert set(keyed) == {"u0", "u1", "u2", "u3"}


class TestParallelRun:
    def test_parallel_matches_serial(self):
        units = [WorkUnit(unit_id=i, fn=square, args=(i,)) for i in range(20)]
        serial = ParallelSweeper(1).run(units)
        parallel = ParallelSweeper(2).run(units)
        assert [r.unit_id for r in parallel] == [r.unit_id for r in serial]
        assert [r.value for r in parallel] == [r.value for r in serial]

    def test_explicit_chunk_size(self):
        units = [WorkUnit(unit_id=i, fn=square, args=(i,)) for i in range(10)]
        results = ParallelSweeper(2, chunk_size=3).run(units)
        assert [r.value for r in results] == [i * i for i in range(10)]

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelSweeper(2, chunk_size=0)

    def test_single_unit_runs_inline(self):
        [result] = ParallelSweeper(4).run([WorkUnit(unit_id=0, fn=square, args=(5,))])
        assert result.value == 25


class TestAdaptiveExecutor:
    UNITS = [WorkUnit(unit_id=i, fn=square, args=(i,)) for i in range(6)]

    def test_plan_recorded_for_parallel_run(self, monkeypatch):
        monkeypatch.setattr(sweeper_module, "_effective_cpus", lambda: 8)
        with ParallelSweeper(2, executor="thread") as sweeper:
            sweeper.run(self.UNITS)
            plan = sweeper.last_plan
        assert plan.requested_jobs == 2
        assert plan.resolved_jobs == 2
        assert plan.executor == "thread"
        assert plan.units == plan.dispatched == len(self.UNITS)
        assert plan.reason == ""
        assert last_plan() == plan

    def test_single_cpu_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(sweeper_module, "_effective_cpus", lambda: 1)
        with ParallelSweeper(4) as sweeper:
            results = sweeper.run(self.UNITS)
            plan = sweeper.last_plan
        assert plan.executor == "serial"
        assert "single effective CPU" in plan.reason
        assert [r.value for r in results] == [i * i for i in range(6)]

    def test_auto_on_single_cpu_reports_the_fallback(self, monkeypatch):
        monkeypatch.setattr(sweeper_module, "_effective_cpus", lambda: 1)
        with ParallelSweeper("auto") as sweeper:
            sweeper.run(self.UNITS)
            plan = sweeper.last_plan
        assert plan.requested_jobs == "auto"
        assert plan.executor == "serial"
        assert "single effective CPU" in plan.reason

    def test_explicit_jobs_exceeding_units_falls_back(self, monkeypatch):
        monkeypatch.setattr(sweeper_module, "_effective_cpus", lambda: 16)
        with ParallelSweeper(12) as sweeper:
            sweeper.run(self.UNITS)
            plan = sweeper.last_plan
        assert plan.executor == "serial"
        assert "exceeds" in plan.reason

    def test_auto_jobs_clamp_to_units_without_fallback(self, monkeypatch):
        monkeypatch.setattr(sweeper_module, "_effective_cpus", lambda: 16)
        with ParallelSweeper("auto", executor="thread") as sweeper:
            sweeper.run(self.UNITS)
            plan = sweeper.last_plan
        assert plan.executor == "thread"
        assert plan.resolved_jobs == len(self.UNITS)

    def test_thread_executor_matches_serial(self, monkeypatch):
        monkeypatch.setattr(sweeper_module, "_effective_cpus", lambda: 8)
        serial = ParallelSweeper(1).run(self.UNITS)
        with ParallelSweeper(3, executor="thread") as sweeper:
            threaded = sweeper.run(self.UNITS)
        assert [r.value for r in threaded] == [r.value for r in serial]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            ParallelSweeper(2, executor="fiber")

    def test_pool_persists_across_runs(self, monkeypatch):
        monkeypatch.setattr(sweeper_module, "_effective_cpus", lambda: 8)
        with ParallelSweeper(2, executor="thread") as sweeper:
            sweeper.run(self.UNITS)
            first_pool = sweeper._pool
            sweeper.run(self.UNITS)
            assert sweeper._pool is first_pool
        assert sweeper._pool is None  # context exit closed it


class TestCacheAwareRun:
    def units(self, cache):
        return [
            WorkUnit(
                unit_id=i,
                fn=square,
                args=(i,),
                cache_key=cache.key("square", dict(i=i)),
            )
            for i in range(5)
        ]

    def test_hits_are_marked_and_not_dispatched(self, tmp_path):
        cache = ResultCache(tmp_path)
        with ParallelSweeper(1) as sweeper:
            cold = sweeper.run(self.units(cache), cache=cache)
            assert all(not r.cached for r in cold)
            assert sweeper.last_plan.dispatched == 5
            warm = sweeper.run(self.units(cache), cache=cache)
        assert all(r.cached for r in warm)
        assert all(r.seconds == 0.0 for r in warm)
        assert [r.value for r in warm] == [r.value for r in cold]
        assert sweeper.last_plan.dispatched == 0
        assert sweeper.last_plan.cache_hits == 5

    def test_partial_hits_dispatch_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        units = self.units(cache)
        with ParallelSweeper(1) as sweeper:
            sweeper.run(units[:2], cache=cache)
            results = sweeper.run(units, cache=cache)
        assert [r.cached for r in results] == [True, True, False, False, False]
        assert sweeper.last_plan.cache_hits == 2
        assert sweeper.last_plan.dispatched == 3

    def test_units_without_keys_always_execute(self, tmp_path):
        cache = ResultCache(tmp_path)
        unkeyed = [WorkUnit(unit_id=i, fn=square, args=(i,)) for i in range(3)]
        with ParallelSweeper(1) as sweeper:
            sweeper.run(unkeyed, cache=cache)
            again = sweeper.run(unkeyed, cache=cache)
        assert all(not r.cached for r in again)


class TestRunAdaptive:
    """The wave protocol behind the adaptive sweep driver."""

    def test_waves_run_until_caller_stops(self):
        waves = [
            [WorkUnit(unit_id=(r, i), fn=square, args=(i,)) for i in range(3)]
            for r in range(4)
        ]
        seen: list[list[int]] = []

        def next_units(executed):
            if executed is not None:
                seen.append([r.value for r in executed])
            return waves[len(seen)] if len(seen) < len(waves) else None

        with ParallelSweeper(1) as sweeper:
            results = sweeper.run_adaptive(next_units)
        assert seen == [[0, 1, 4]] * 4
        assert len(results) == 12

    def test_first_callback_gets_none_not_empty(self):
        calls: list[object] = []

        def next_units(executed):
            calls.append(executed)
            return None

        with ParallelSweeper(1) as sweeper:
            assert sweeper.run_adaptive(next_units) == []
        assert calls == [None]

    def test_empty_wave_is_legal_and_continues(self):
        script = iter([[], [WorkUnit(unit_id=0, fn=square, args=(7,))], None])

        def next_units(executed):
            return next(script)

        with ParallelSweeper(1) as sweeper:
            results = sweeper.run_adaptive(next_units)
        assert [r.value for r in results] == [49]

    def test_parallel_waves_match_serial(self):
        def make_next():
            state = {"round": 0}

            def next_units(executed):
                if state["round"] == 3:
                    return None
                units = [
                    WorkUnit(unit_id=(state["round"], i), fn=square, args=(i,))
                    for i in range(5)
                ]
                state["round"] += 1
                return units

            return next_units

        with ParallelSweeper(1) as sweeper:
            serial = sweeper.run_adaptive(make_next())
        with ParallelSweeper(2, executor="thread") as sweeper:
            threaded = sweeper.run_adaptive(make_next())
        assert [(r.unit_id, r.value) for r in threaded] == [
            (r.unit_id, r.value) for r in serial
        ]


class TestConvenience:
    def test_map_preserves_order(self):
        values = ParallelSweeper(1).map(combine, [(1, 2), (3, 4)], offset=1)
        assert values == [103, 305]

    def test_sweep_serial_and_parallel_agree(self):
        argtuples = [(i,) for i in range(12)]
        assert sweep(square, argtuples, jobs=1) == sweep(square, argtuples, jobs=2)
