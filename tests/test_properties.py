"""Cross-module property tests: theory and simulation must agree.

These hypothesis tests tie the layers together on randomly drawn
configurations: the bounds modules size a network, the traffic
generator drives it, the simulator routes it, and the properties the
paper proves (plus the reproduction's corrected bound) must hold on
every drawn instance.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import any_multicast_capacity, full_multicast_capacity
from repro.core.corrected import CorrectedBound, min_middle_switches_corrected
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import multistage_cost
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic

small_topologies = st.tuples(
    st.integers(2, 3),  # n
    st.integers(2, 3),  # r
    st.integers(1, 3),  # k
)
constructions = st.sampled_from(list(Construction))
models = st.sampled_from(list(MulticastModel))


class TestSimulatorVsTheory:
    @given(
        nrk=small_topologies,
        construction=constructions,
        model=models,
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=25)
    def test_never_blocks_at_corrected_bound(self, nrk, construction, model, seed):
        """The reproduction's central invariant, on random instances."""
        n, r, k = nrk
        bound = CorrectedBound.compute(n, r, k, construction, model)
        net = ThreeStageNetwork(
            n, r, bound.m_min, k,
            construction=construction, model=model, x=bound.best_x,
        )
        live = {}
        for event in dynamic_traffic(model, n * r, k, steps=60, seed=seed):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        assert net.blocks == 0
        net.check_invariants()

    @given(
        nrk=small_topologies,
        construction=constructions,
        model=models,
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=15)
    def test_teardown_everything_restores_idle(self, nrk, construction, model, seed):
        n, r, k = nrk
        bound = CorrectedBound.compute(n, r, k, construction, model)
        net = ThreeStageNetwork(
            n, r, bound.m_min, k, construction=construction, model=model
        )
        live = {}
        for event in dynamic_traffic(model, n * r, k, steps=40, seed=seed):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        net.disconnect_all()
        utilization = net.link_utilization()
        assert utilization["input_to_middle"] == 0.0
        assert utilization["middle_to_output"] == 0.0
        assert net.total_conversions() == 0

    @given(
        nrk=small_topologies,
        construction=constructions,
        model=models,
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=15)
    def test_routes_respect_x_and_fanout(self, nrk, construction, model, seed):
        """Every routed connection uses <= x middles and reaches exactly
        the requested output modules."""
        n, r, k = nrk
        bound = CorrectedBound.compute(n, r, k, construction, model)
        net = ThreeStageNetwork(
            n, r, bound.m_min, k,
            construction=construction, model=model, x=bound.best_x,
        )
        live = {}
        for event in dynamic_traffic(model, n * r, k, steps=50, seed=seed):
            if event.kind == "setup":
                cid = net.connect(event.connection)
                live[event.connection_id] = cid
                routed = net.active_connections[cid]
                assert len(routed.branches) <= net.x
                reached = sorted(
                    p for b in routed.branches for p, _ in b.deliveries
                )
                wanted = sorted(
                    {
                        net.topology.output_module_of(d.port)
                        for d in event.connection.destinations
                    }
                )
                assert reached == wanted
            else:
                net.disconnect(live.pop(event.connection_id))


class TestBoundsAndCosts:
    @given(
        nrk=st.tuples(st.integers(2, 12), st.integers(2, 24), st.integers(1, 6)),
        construction=constructions,
        model=models,
    )
    @settings(max_examples=40)
    def test_corrected_cost_positive_and_model_ordering(self, nrk, construction, model):
        n, r, k = nrk
        m = min_middle_switches_corrected(n, r, k, construction, model)
        cost = multistage_cost(n, r, m, k, construction, model)
        assert cost.crosspoints > 0
        if model is MulticastModel.MSW and construction is Construction.MSW_DOMINANT:
            assert cost.converters == 0
        if model is not MulticastModel.MSW:
            assert cost.converters > 0

    @given(
        n_ports=st.integers(1, 6),
        k=st.integers(1, 4),
    )
    @settings(max_examples=40)
    def test_capacity_model_order_everywhere(self, n_ports, k):
        full = [full_multicast_capacity(m, n_ports, k) for m in MulticastModel]
        any_ = [any_multicast_capacity(m, n_ports, k) for m in MulticastModel]
        assert full == sorted(full)
        assert any_ == sorted(any_)
