"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro import api
from repro.cli import build_parser, main
from repro.core.models import MulticastModel
from repro.workloads import generate_trace


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestCommands:
    def test_table1(self, capsys):
        out = run_cli(capsys, "table1", "--n-ports", "4", "--k", "2")
        assert "Table 1" in out and "MAW" in out

    def test_table2(self, capsys):
        out = run_cli(capsys, "table2", "--n-ports", "64", "--k", "2")
        assert "MSW/MS" in out

    def test_table2_maw_dominant(self, capsys):
        out = run_cli(
            capsys,
            "table2",
            "--n-ports",
            "64",
            "--k",
            "2",
            "--construction",
            "maw-dominant",
        )
        assert "MAW-dominant" in out

    def test_bounds(self, capsys):
        out = run_cli(capsys, "bounds", "--n", "4", "--r", "4", "--k", "2")
        assert "minimal m" in out

    def test_crossover(self, capsys):
        out = run_cli(capsys, "crossover", "--k", "2")
        assert "multistage beats crossbar" in out

    def test_capacity(self, capsys):
        out = run_cli(capsys, "capacity", "--n-ports", "4", "--k-max", "3")
        assert "log10" in out

    def test_blocking(self, capsys):
        out = run_cli(
            capsys, "blocking", "--n", "2", "--r", "2", "--k", "1", "--m-max", "4"
        )
        assert "P(block)" in out

    def test_fig10(self, capsys):
        out = run_cli(capsys, "fig10")
        assert "BLOCKED" in out and "routed" in out

    def test_blocking_cache_footer(self, capsys, tmp_path):
        out = run_cli(
            capsys, "blocking", "--n", "2", "--r", "2", "--k", "1",
            "--m-max", "2", "--cache", "--cache-dir", str(tmp_path),
        )
        assert "cache: 0 hits" in out and "6 stored" in out
        out = run_cli(
            capsys, "blocking", "--n", "2", "--r", "2", "--k", "1",
            "--m-max", "2", "--cache", "--cache-dir", str(tmp_path),
        )
        assert "cache: 6 hits" in out

    BLOCKING = ("blocking", "--n", "2", "--r", "2", "--k", "1", "--m-max", "4")

    def test_blocking_kernel_flag_same_numbers(self, capsys):
        default = run_cli(capsys, *self.BLOCKING)
        for kernel in ("reference", "bitmask", "batched"):
            out = run_cli(capsys, *self.BLOCKING, "--kernel", kernel)
            assert out == default

    def test_blocking_batched_with_batch_cap(self, capsys):
        default = run_cli(capsys, *self.BLOCKING)
        out = run_cli(
            capsys, *self.BLOCKING, "--kernel", "batched", "--batch", "2"
        )
        assert out == default

    def test_blocking_batched_cache_footer(self, capsys, tmp_path):
        """Batched cells land in the cache with per-cell granularity."""
        args = (
            "blocking", "--n", "2", "--r", "2", "--k", "1", "--m-max", "2",
            "--kernel", "batched", "--cache", "--cache-dir", str(tmp_path),
        )
        out = run_cli(capsys, *args)
        assert "cache: 0 hits" in out and "6 stored" in out
        out = run_cli(capsys, *args)
        assert "cache: 6 hits" in out

    def test_blocking_prints_confidence_interval(self, capsys):
        out = run_cli(capsys, *self.BLOCKING)
        assert "CI95" in out and "+/-" in out

    SWEEP = (
        "sweep", "--n", "2", "--r", "2", "--k", "1", "--m-max", "3",
        "--steps", "150", "--ci-halfwidth", "0.05",
    )

    def test_sweep_reports_ci_rounds_and_convergence(self, capsys):
        out = run_cli(capsys, *self.SWEEP)
        assert "Adaptive blocking sweep" in out
        assert "CI95" in out and "rounds" in out and "converged" in out
        assert "events:" in out

    def test_sweep_kernel_flag_same_numbers(self, capsys):
        default = run_cli(capsys, *self.SWEEP)
        for kernel in ("bitmask", "batched"):
            assert run_cli(capsys, *self.SWEEP, "--kernel", kernel) == default

    def test_sweep_resume_is_bit_identical(self, capsys, tmp_path):
        cold = run_cli(capsys, *self.SWEEP)
        args = (*self.SWEEP, "--resume", "--cache-dir", str(tmp_path))
        first = run_cli(capsys, *args)
        warm = run_cli(capsys, *args)
        table = lambda out: out.split("events:")[0]  # noqa: E731
        assert table(first) == table(cold)
        assert table(warm) == table(cold)
        assert "0 stored" in warm  # everything replayed from the cache

    def test_sweep_unconverged_cells_warn(self, capsys):
        out = run_cli(
            capsys, "sweep", "--n", "2", "--r", "2", "--k", "1",
            "--m-max", "1", "--steps", "100", "--ci-halfwidth", "0.0001",
            "--max-rounds", "2",
        )
        assert "NO" in out and "warning:" in out


class TestTraceCommand:
    def _records(self, out):
        import json

        return [json.loads(line) for line in out.strip().splitlines()]

    def test_trace_fig10_emits_schema_valid_jsonl(self, capsys):
        from repro.obs.trace import validate_record

        records = self._records(run_cli(capsys, "trace", "fig10"))
        for record in records:
            validate_record(record)
        summary = records[-1]
        assert summary["event"] == "summary"
        assert sum(summary["causes"].values()) == summary["blocked"] == 1
        kinds = [r["cause"]["kind"] for r in records if r["event"] == "block"]
        assert kinds == ["full_middles"]

    def test_trace_blocking_sums_to_numerator(self, capsys):
        from repro.obs.trace import validate_record

        records = self._records(run_cli(
            capsys, "trace", "blocking", "--n", "2", "--r", "2", "--m", "2",
            "--k", "1", "--steps", "150", "--seeds", "0,1",
        ))
        for record in records:
            validate_record(record)
        summary = records[-1]
        blocks = [r for r in records if r["event"] == "block"]
        assert summary["blocked"] == len(blocks) > 0
        assert sum(summary["causes"].values()) == summary["blocked"]
        # The trace numerator is the estimate's numerator.
        from repro import api

        estimate = api.blocking(
            2, 2, 2, 1, x=1, traffic=api.UniformConfig(steps=150, seeds=(0, 1)))
        assert summary["blocked"] == estimate.blocked
        assert summary["attempts"] == estimate.attempts

    def test_trace_out_writes_file(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        out = run_cli(capsys, "trace", "fig10", "--trace-out", str(path))
        assert "trace written to" in out
        assert len(path.read_text().splitlines()) >= 2

    def test_design(self, capsys):
        out = run_cli(capsys, "design", "--n-ports", "64", "--k", "2")
        assert "crosspoints" in out and "recursive" in out.lower()

    def test_design_with_model(self, capsys):
        out = run_cli(
            capsys, "design", "--n-ports", "64", "--k", "2", "--model", "maw"
        )
        assert "MAW" in out

    def test_kernels_matrix(self, capsys, monkeypatch):
        from repro.engine.backends import BACKEND_ENV, NUMPY_WORD_BITS

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        out = run_cli(capsys, "kernels")
        for kernel in ("reference", "bitmask", "batched"):
            assert kernel in out
        for backend in ("python", "numba", "numpy"):
            assert backend in out
        assert (
            f"plane width: W = ceil(max(m, r, k) / {NUMPY_WORD_BITS})" in out
        )
        assert "active routing kernel: bitmask" in out
        assert f"{BACKEND_ENV}: (unset)" in out
        assert "backend status:" in out
        assert "python: available" in out

    def test_kernels_reports_env_override(self, capsys, monkeypatch):
        from repro.engine.backends import BACKEND_ENV

        monkeypatch.setenv(BACKEND_ENV, "numpy")
        out = run_cli(capsys, "kernels")
        assert f"{BACKEND_ENV}=numpy" in out
        assert "auto backend resolves to: numpy" in out

    def test_kernels_shows_missing_backend_reason(self, capsys, monkeypatch):
        from repro.engine import backends as mod

        monkeypatch.setitem(
            mod._SPECS, "numba",
            mod.BackendSpec(
                factory=mod._SPECS["numba"].factory,
                missing=lambda: "numba is not installed",
            ),
        )
        out = run_cli(capsys, "kernels")
        assert "numba: unavailable (numba is not installed)" in out

    def test_kernels_shows_installed_backend_width(self, capsys, monkeypatch):
        from repro.engine import backends as mod

        monkeypatch.setitem(
            mod._SPECS, "numba",
            mod.BackendSpec(
                factory=mod._SPECS["numba"].factory,
                missing=lambda: None,
            ),
        )
        out = run_cli(capsys, "kernels")
        assert "numba: available (plane width: any)" in out

    def test_kernels_shows_width_capped_backend(self, capsys, monkeypatch):
        from repro.engine import backends as mod

        monkeypatch.setitem(
            mod._SPECS, "test-cuda",
            mod.BackendSpec(
                factory=mod._SPECS["numpy"].factory,
                missing=lambda: None,
                max_plane_width=1,
            ),
        )
        out = run_cli(capsys, "kernels")
        assert "test-cuda: available (max plane width: 1 word)" in out


class TestParser:
    def test_unknown_model_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["design", "--model", "bogus"])

    def test_unknown_kernel_rejected_listing_valid_ones(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["blocking", "--kernel", "bogus"])
        message = capsys.readouterr().err
        assert "unknown kernel 'bogus'" in message
        for kernel in ("batched", "bitmask", "reference"):
            assert kernel in message

    def test_unknown_backend_rejected_listing_valid_ones(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["blocking", "--backend", "bogus"])
        message = capsys.readouterr().err
        assert "unknown backend 'bogus'" in message
        for backend in ("auto", "python"):
            assert backend in message

    def test_backend_flag_accepts_known_names(self):
        parser = build_parser()
        args = parser.parse_args(["blocking", "--backend", "PYTHON"])
        assert args.backend == "python"

    def test_unknown_construction_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table2", "--construction", "bogus"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestNewCommands:
    def test_gap(self, capsys):
        out = run_cli(capsys, "gap")
        assert "BLOCKED" in out and "corrected" in out

    def test_exact(self, capsys):
        out = run_cli(capsys, "exact", "--n", "2", "--r", "2", "--k", "1")
        assert "exact strict-sense threshold: m = 3" in out

    def test_exact_rearrangeable(self, capsys):
        out = run_cli(
            capsys, "exact", "--n", "2", "--r", "2", "--k", "1", "--rearrangeable"
        )
        assert "rearrangeable threshold" in out

    def test_load(self, capsys):
        out = run_cli(
            capsys, "load", "--n", "2", "--r", "2", "--m", "3", "--k", "1",
            "--loads", "1,4", "--arrivals", "200", "--model", "msw",
        )
        assert "P(fabric loss)" in out

    def test_report_fast(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        out = run_cli(
            capsys, "report", "--fast", "--n-ports", "64", "--k", "2",
            "--output", str(target),
        )
        assert "report written" in out
        assert "# WDM multicast reproduction report" in target.read_text()


class TestWorkloadCommands:
    def test_workloads_matrix(self, capsys):
        out = run_cli(capsys, "workloads")
        assert "Registered traffic workloads" in out
        for name in ("uniform", "hotspot", "heavytail_fanout",
                     "poisson_erlang", "trace"):
            assert name in out
        assert "zipf_s=1.2" in out
        assert "no (fixed recording)" in out

    def test_blocking_with_workload_flag(self, capsys):
        base = run_cli(capsys, "blocking", "--n", "2", "--r", "2", "--k", "1",
                       "--m-max", "2")
        skewed = run_cli(
            capsys, "blocking", "--n", "2", "--r", "2", "--k", "1",
            "--m-max", "2", "--workload", "hotspot",
            "--workload-param", "zipf_s=2.0",
        )
        assert "uniform traffic" in base
        assert "hotspot traffic" in skewed
        assert base != skewed

    def test_sweep_with_workload_flag(self, capsys):
        out = run_cli(
            capsys, "sweep", "--n", "2", "--r", "2", "--k", "1",
            "--m-max", "2", "--steps", "150", "--ci-halfwidth", "0.05",
            "--max-rounds", "3", "--workload", "heavytail_fanout",
        )
        assert "heavytail_fanout traffic" in out

    def test_trace_gen_round_trips_through_blocking(self, capsys, tmp_path):
        target = tmp_path / "burst.jsonl"
        out = run_cli(
            capsys, "trace-gen", "--out", str(target), "--workload",
            "hotspot", "--workload-param", "zipf_s=1.5",
            "--n", "2", "--r", "2", "--k", "1", "--steps", "200",
        )
        assert "trace written" in out and target.exists()
        replay = run_cli(
            capsys, "blocking", "--n", "2", "--r", "2", "--k", "1",
            "--m-max", "2", "--workload", "trace",
            "--workload-param", f"path={target}",
        )
        assert "trace traffic" in replay

    def test_unknown_workload_rejected_listing_models(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["blocking", "--workload", "bogus"])
        message = capsys.readouterr().err
        assert "unknown workload 'bogus'" in message
        for name in ("uniform", "hotspot", "heavytail_fanout",
                     "poisson_erlang", "trace"):
            assert name in message

    def test_unknown_workload_param_rejected_listing_fields(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["blocking", "--n", "2", "--r", "2", "--k", "1",
                  "--m-max", "2", "--workload", "hotspot",
                  "--workload-param", "gamma=3"])
        assert "no parameter 'gamma'" in str(excinfo.value)
        assert "zipf_s" in str(excinfo.value)

    def test_malformed_workload_param_rejected(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["blocking", "--workload-param", "zipf_s"])
        assert "key=value" in capsys.readouterr().err

    def test_adaptive_sweep_over_trace_rejected_cleanly(self, tmp_path):
        target = tmp_path / "fixed.jsonl"
        generate_trace(
            api.make_workload("uniform"), str(target),
            MulticastModel.MSW, 4, 1, steps=40, seed=0,
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--n", "2", "--r", "2", "--k", "1",
                  "--m-max", "2", "--ci-halfwidth", "0.05",
                  "--workload", "trace",
                  "--workload-param", f"path={target}"])
        message = str(excinfo.value)
        assert message.startswith("wdm-repro: error:")
        assert "40 events" in message


class TestFabricCommands:
    def test_fabrics_matrix_lists_registry(self, capsys):
        out = run_cli(capsys, "fabrics")
        assert "Fabric models x batch state backends" in out
        for name in ("clos", "crossbar", "awg_clos"):
            assert name in out
        assert "n/a (no replay)" in out
        assert "--fabric NAME" in out

    def test_blocking_crossbar_blocks_nothing(self, capsys):
        out = run_cli(
            capsys, "blocking", "--n", "2", "--r", "2", "--k", "2",
            "--m-max", "3", "--fabric", "crossbar",
        )
        assert "crossbar fabric" in out
        for line in out.splitlines():
            cells = line.split()
            if cells and cells[0] in {"1", "2", "3"}:
                assert cells[2] == "0"

    def test_blocking_awg_blocks_at_least_clos(self, capsys):
        def blocked_column(out):
            rows = {}
            for line in out.splitlines():
                cells = line.split()
                if cells and cells[0] in {"1", "2", "3"}:
                    rows[int(cells[0])] = int(cells[2])
            return rows

        base = ["blocking", "--n", "2", "--r", "2", "--k", "2", "--m-max", "3"]
        clos = blocked_column(run_cli(capsys, *base))
        awg = blocked_column(run_cli(capsys, *base, "--fabric", "awg_clos"))
        assert set(clos) == set(awg) == {1, 2, 3}
        assert all(awg[m] >= clos[m] for m in clos)

    def test_sweep_accepts_fabric(self, capsys):
        out = run_cli(
            capsys, "sweep", "--n", "2", "--r", "2", "--k", "2",
            "--m-max", "2", "--steps", "150", "--max-rounds", "2",
            "--fabric", "awg_clos",
        )
        assert "awg_clos fabric" in out

    def test_unknown_fabric_rejected_listing_registry(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["blocking", "--fabric", "bogus"])
        message = capsys.readouterr().err
        assert "unknown fabric 'bogus'" in message
        for name in ("awg_clos", "clos", "crossbar"):
            assert name in message

    def test_adversarial_non_clos_rejected(self):
        with pytest.raises(ValueError, match="Clos fabric only"):
            main(["blocking", "--n", "2", "--r", "2", "--k", "1",
                  "--m-max", "2", "--adversarial",
                  "--fabric", "awg_clos"])
