"""Tests for the CI benchmark-regression guard."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    Path(__file__).resolve().parent.parent
    / "tools"
    / "check_bench_regression.py",
)
check = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check)


def report(quick=True, **speedups):
    out = {"meta": {"quick": quick}}
    for name, speedup in speedups.items():
        out[name] = {"speedup": speedup, "identical": True}
    return out


GUARDED = dict(
    cover_kernel=3.0,
    engine=2.5,
    routing_replay=1.5,
    end_to_end=1.2,
    fused=4.0,
    wide=9.0,
    workloads=10.0,
    topology=1.0,
    adaptive=2.5,
)


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def run(tmp_path, baseline, fresh):
    argv = [
        "--baseline", str(write(tmp_path, "baseline.json", baseline)),
        "--fresh", str(write(tmp_path, "fresh.json", fresh)),
        "--output", str(tmp_path / "diff.json"),
    ]
    code = check.main(argv)
    return code, json.loads((tmp_path / "diff.json").read_text())


class TestVerdicts:
    def test_identical_reports_pass(self, tmp_path):
        code, diff = run(tmp_path, report(**GUARDED), report(**GUARDED))
        assert code == 0 and diff["ok"]

    def test_small_drop_tolerated(self, tmp_path):
        fresh = report(**dict(GUARDED, cover_kernel=3.0 * 0.9))
        code, diff = run(tmp_path, report(**GUARDED), fresh)
        assert code == 0
        assert diff["sections"]["cover_kernel"]["regressed"] is False

    def test_large_drop_fails(self, tmp_path):
        fresh = report(**dict(GUARDED, end_to_end=1.2 * 0.8))
        code, diff = run(tmp_path, report(**GUARDED), fresh)
        assert code == 1
        assert diff["regressions"] == ["end_to_end"]

    def test_unguarded_drop_ignored(self, tmp_path):
        baseline = report(cache=500.0, **GUARDED)
        fresh = report(cache=5.0, **GUARDED)
        code, diff = run(tmp_path, baseline, fresh)
        assert code == 0
        assert diff["sections"]["cache"]["guarded"] is False

    def test_missing_guarded_section_fails(self, tmp_path):
        fresh = report(
            **{k: v for k, v in GUARDED.items() if k != "routing_replay"}
        )
        code, diff = run(tmp_path, report(**GUARDED), fresh)
        assert code == 1
        assert diff["missing_guarded_sections"] == ["routing_replay"]

    def test_new_section_without_baseline_passes(self, tmp_path):
        fresh = report(batched=18.0, **GUARDED)
        code, diff = run(tmp_path, report(**GUARDED), fresh)
        assert code == 0
        assert diff["sections"]["batched"]["baseline_speedup"] is None

    def test_mode_mismatch_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="mode mismatch"):
            run(tmp_path, report(quick=True, **GUARDED),
                report(quick=False, **GUARDED))

    def test_exempt_section_never_regresses(self, tmp_path):
        # The fused section flags guard_exempt when numba is missing --
        # its interpreted timing must not gate the build however low.
        baseline = report(**GUARDED)
        fresh = report(**dict(GUARDED, fused=0.1))
        fresh["fused"]["guard_exempt"] = True
        code, diff = run(tmp_path, baseline, fresh)
        assert code == 0
        entry = diff["sections"]["fused"]
        assert entry["guarded"] is False
        assert entry["guard_exempt"] is True
        assert entry["regressed"] is False

    def test_exempt_baseline_cannot_gate_compiled_run(self, tmp_path):
        # An interpreted baseline ratio measured a different code path,
        # so even a compiled fresh run below it is not a regression.
        baseline = report(**dict(GUARDED, fused=10.0))
        baseline["fused"]["guard_exempt"] = True
        fresh = report(**dict(GUARDED, fused=3.5))
        code, diff = run(tmp_path, baseline, fresh)
        assert code == 0
        assert diff["sections"]["fused"]["regressed"] is False

    def test_compiled_drop_still_fails(self, tmp_path):
        fresh = report(**dict(GUARDED, fused=4.0 * 0.8))
        code, diff = run(tmp_path, report(**GUARDED), fresh)
        assert code == 1
        assert diff["regressions"] == ["fused"]


class TestSpeedupFloor:
    """The ``min_speedup`` absolute floor (the adaptive event-ratio gate)."""

    def test_meeting_the_floor_passes(self, tmp_path):
        fresh = report(**GUARDED)
        fresh["adaptive"]["min_speedup"] = 2.0
        code, diff = run(tmp_path, report(**GUARDED), fresh)
        assert code == 0
        assert diff["floor_failures"] == []

    def test_below_the_floor_fails_even_without_baseline_drop(self, tmp_path):
        # Baseline also at 1.5: no relative regression, but the declared
        # floor is not met -- the absolute contract gates regardless.
        baseline = report(**dict(GUARDED, adaptive=1.5))
        fresh = report(**dict(GUARDED, adaptive=1.5))
        fresh["adaptive"]["min_speedup"] = 2.0
        code, diff = run(tmp_path, baseline, fresh)
        assert code == 1
        assert diff["floor_failures"] == ["adaptive"]
        assert diff["sections"]["adaptive"]["below_floor"] is True

    def test_floor_ignored_on_unguarded_sections(self, tmp_path):
        fresh = report(cache=1.0, **GUARDED)
        fresh["cache"]["min_speedup"] = 5.0
        code, diff = run(tmp_path, report(**GUARDED), fresh)
        assert code == 0
        assert diff["floor_failures"] == []


class TestCommittedBaseline:
    def test_baseline_is_a_quick_report_with_guarded_sections(self):
        baseline = json.loads(
            (
                Path(__file__).resolve().parent.parent
                / "benchmarks"
                / "BENCH_baseline_quick.json"
            ).read_text()
        )
        assert baseline["meta"]["quick"] is True
        for name in check.GUARDED_SECTIONS:
            assert baseline[name]["identical"] is True
            # Exempt entries (the fused section recorded without numba)
            # carry interpreted timings that never gate anything, and
            # identity-only sections (topology) pin their speedup at
            # exactly 1.0 by construction.
            if not baseline[name].get("guard_exempt"):
                assert baseline[name]["speedup"] >= 1.0
